#![forbid(unsafe_code)]
//! # mpi-api — the MPI-facing surface shared by both engines
//!
//! BCS-MPI (the paper's contribution, crate `bcs-mpi`) and the
//! production-style baseline (crate `quadrics-mpi`) implement the *same* MPI
//! subset over the same simulated cluster, differing only in protocol. This
//! crate holds everything they share:
//!
//! * [`datatype`] — MPI datatypes and reduction operators (with native
//!   combine used by the host-side baseline reduction);
//! * [`message`] — ranks, tags, statuses, envelope matching (including
//!   `ANY_SOURCE` / `ANY_TAG` wildcards and the non-overtaking rule);
//! * [`call`] — the request/response protocol between simulated rank
//!   threads and the engine (`MpiCall` / `MpiResp`), mirroring the BCS API
//!   of the paper's Appendix A;
//! * [`ctx`] — [`ctx::AsyncMpi`] / [`ctx::Mpi`], the handles rank programs
//!   use: blocking and non-blocking point-to-point, barrier/bcast/reduce/
//!   allreduce (engine primitives, NIC-level in BCS-MPI), and scatter(v)/
//!   gather(v)/allgather(v)/alltoall(v) composed on top of the primitives,
//!   exactly as Appendix A prescribes ("the rest of them are built on top
//!   of those"); plus [`ctx::RankProgram`], a rank program as data;
//! * [`runtime`] — [`runtime::Engine`] (the trait an MPI implementation
//!   provides), [`runtime::ClusterWorld`] (harness + engine world) and
//!   the job drivers: [`runtime::run_program`] steps each rank as a
//!   stackless state machine ([`runtime::Backend::Vm`], scales to
//!   thousands of ranks), while [`runtime::run_job`] retains the
//!   one-cooperative-thread-per-rank reference backend.

pub mod call;
pub mod coll_sched;
pub mod comm;
pub mod ctx;
pub mod datatype;
pub mod message;
pub mod noise;
pub mod payload;
pub mod runtime;

pub use call::{MpiCall, MpiResp, ReqId};
pub use coll_sched::CollAlgo;
pub use payload::Payload;
pub use comm::{CommHandle, CommId, CommRegistry};
pub use ctx::{AsyncMpi, Mpi, RankProgram};
pub use datatype::{Datatype, ReduceOp};
pub use message::{Envelope, SrcSel, Status, TagSel};
pub use runtime::{
    Backend, ClusterWorld, Engine, JobLayout, RunResult, run_job, run_program,
};
