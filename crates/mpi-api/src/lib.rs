#![forbid(unsafe_code)]
//! # mpi-api — the MPI-facing surface shared by both engines
//!
//! BCS-MPI (the paper's contribution, crate `bcs-mpi`) and the
//! production-style baseline (crate `quadrics-mpi`) implement the *same* MPI
//! subset over the same simulated cluster, differing only in protocol. This
//! crate holds everything they share:
//!
//! * [`datatype`] — MPI datatypes and reduction operators (with native
//!   combine used by the host-side baseline reduction);
//! * [`message`] — ranks, tags, statuses, envelope matching (including
//!   `ANY_SOURCE` / `ANY_TAG` wildcards and the non-overtaking rule);
//! * [`call`] — the request/response protocol between simulated rank
//!   threads and the engine (`MpiCall` / `MpiResp`), mirroring the BCS API
//!   of the paper's Appendix A;
//! * [`ctx`] — [`ctx::Mpi`], the handle rank programs use: blocking and
//!   non-blocking point-to-point, barrier/bcast/reduce/allreduce (engine
//!   primitives, NIC-level in BCS-MPI), and scatter(v)/gather(v)/
//!   allgather(v)/alltoall(v) composed on top of the primitives, exactly as
//!   Appendix A prescribes ("the rest of them are built on top of those");
//! * [`runtime`] — [`runtime::Engine`] (the trait an MPI implementation
//!   provides), [`runtime::ClusterWorld`] (harness + engine world) and
//!   [`runtime::run_job`], the driver that spawns one cooperative thread per
//!   rank and runs the discrete-event simulation to completion.

pub mod call;
pub mod comm;
pub mod ctx;
pub mod datatype;
pub mod message;
pub mod noise;
pub mod payload;
pub mod runtime;

pub use call::{MpiCall, MpiResp, ReqId};
pub use payload::Payload;
pub use comm::{CommHandle, CommId, CommRegistry};
pub use ctx::Mpi;
pub use datatype::{Datatype, ReduceOp};
pub use message::{Envelope, SrcSel, Status, TagSel};
pub use runtime::{ClusterWorld, Engine, JobLayout, RunResult, run_job};
