//! Point-to-point: descriptor posting, the descriptor exchange microphase
//! (BS), matching and chunk scheduling (BR), and the data transmission (DH).
//!
//! Faithful to §4.3 and Figure 6:
//!
//! 1. a send posts a descriptor to the BS; a receive posts to the BR;
//! 2. DEM: the BS delivers each send descriptor posted during slice `i-1`
//!    to the BR of the destination node;
//! 3. MSM: the BR matches the remote send-descriptor list against the local
//!    receive-descriptor list (first match in arrival/post order — MPI
//!    non-overtaking), builds a matching descriptor, and schedules it; a
//!    message that cannot be transmitted within the slice's bandwidth budget
//!    is split into chunks, the first scheduled now, the rest in following
//!    slices;
//! 4. P2P microphase: the DH of the *receiving* node performs a one-sided
//!    get for every scheduled chunk — no intervention from either
//!    application process.

use crate::engine::{BW, Blocked, BcsMpi, ReqKind};
use mpi_api::call::{MpiResp, ReqId};
use mpi_api::message::{SrcSel, Status, TagSel};
use mpi_api::runtime::resume_at;
use simcore::Sim;

/// Identifier of one in-flight message (sender-assigned).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId(pub u64);

/// A send descriptor in BS memory.
#[derive(Clone)]
pub(crate) struct SendDesc {
    pub msg: MsgId,
    pub src_rank: usize,
    pub dst_rank: usize,
    pub tag: i32,
    pub bytes: usize,
    pub req: ReqId,
}

/// A send descriptor as received by the destination BR.
#[derive(Clone)]
pub(crate) struct RemoteSend {
    pub msg: MsgId,
    pub src_rank: usize,
    pub dst_rank: usize,
    pub tag: i32,
    pub bytes: usize,
    pub send_req: ReqId,
}

/// A receive descriptor in BR memory.
#[derive(Clone)]
pub(crate) struct RecvDesc {
    pub req: ReqId,
    pub dst_rank: usize,
    pub src: SrcSel,
    pub tag: TagSel,
}

/// A matching descriptor: transfer in progress, owned by the receiving node.
#[allow(dead_code)] // dst_rank kept for diagnostics/tracing
#[derive(Clone)]
pub(crate) struct MatchItem {
    pub msg: MsgId,
    pub src_node: qsnet::NodeId,
    pub src_rank: usize,
    pub dst_rank: usize,
    pub tag: i32,
    pub send_req: ReqId,
    pub recv_req: ReqId,
    pub total: u64,
    pub moved: u64,
}

/// Per-node NIC-thread state (BS + BR + DH queues).
#[derive(Clone, Default)]
pub(crate) struct NicState {
    /// Send descriptors posted by local processes (BS input FIFO).
    pub send_posted: Vec<SendDesc>,
    /// Snapshot taken at the slice strobe: descriptors to exchange in DEM.
    pub send_exchanging: Vec<SendDesc>,
    /// Receive descriptors posted by local processes (BR).
    pub recv_posted: Vec<RecvDesc>,
    /// Send descriptors received from remote BSs, in arrival order (BR).
    pub remote_sends: Vec<RemoteSend>,
    /// Matching descriptors with bytes still to move (BR/DH).
    pub inflight: Vec<MatchItem>,
    /// Chunks scheduled for this slice's P2P microphase: `(msg, bytes)`.
    pub sched: Vec<(MsgId, u64)>,
    /// Outstanding async work items of the current microphase.
    pub outstanding: u32,
}

impl NicState {
    pub fn describe(&self) -> String {
        if self.send_posted.is_empty()
            && self.recv_posted.is_empty()
            && self.remote_sends.is_empty()
            && self.inflight.is_empty()
        {
            return String::new();
        }
        format!(
            "{} sends posted, {} recvs posted, {} remote sends, {} in flight",
            self.send_posted.len() + self.send_exchanging.len(),
            self.recv_posted.len(),
            self.remote_sends.len(),
            self.inflight.len()
        )
    }
}

// ----------------------------------------------------------------------
// Descriptor posting (application side)
// ----------------------------------------------------------------------

pub(crate) fn post_send(
    w: &mut BW,
    sim: &mut Sim<BW>,
    rank: usize,
    dest: usize,
    tag: i32,
    data: Vec<u8>,
    blocking: bool,
) {
    let e = &mut w.engine;
    let now = sim.now();
    let msg = e.alloc_msg();
    let req = e.alloc_req(rank, ReqKind::Send, now);
    let node = e.node_of(rank);
    let bytes = data.len();
    e.payloads.insert(msg, data);
    e.nic[node.0].send_posted.push(SendDesc {
        msg,
        src_rank: rank,
        dst_rank: dest,
        tag,
        bytes,
        req,
    });
    if blocking {
        e.blocked[rank] = Some(Blocked::SendDone(req));
    } else {
        let at = now + e.cfg.post_cost;
        resume_at(w, sim, at, rank, MpiResp::Req(req));
    }
}

pub(crate) fn post_recv(
    w: &mut BW,
    sim: &mut Sim<BW>,
    rank: usize,
    src: SrcSel,
    tag: TagSel,
    blocking: bool,
) {
    let e = &mut w.engine;
    let now = sim.now();
    let req = e.alloc_req(rank, ReqKind::Recv, now);
    let node = e.node_of(rank);
    e.nic[node.0].recv_posted.push(RecvDesc {
        req,
        dst_rank: rank,
        src,
        tag,
    });
    if blocking {
        e.blocked[rank] = Some(Blocked::WaitOne(req));
    } else {
        let at = now + e.cfg.post_cost;
        resume_at(w, sim, at, rank, MpiResp::Req(req));
    }
}

/// MPI_Probe / MPI_Iprobe: a message is visible once its send descriptor
/// has reached this node's BR and is not yet matched.
pub(crate) fn probe(
    w: &mut BW,
    sim: &mut Sim<BW>,
    rank: usize,
    src: SrcSel,
    tag: TagSel,
    blocking: bool,
) {
    let status = probe_match(&w.engine, rank, src, tag);
    match (status, blocking) {
        (Some(st), _) => {
            let at = sim.now() + w.engine.cfg.post_cost;
            resume_at(w, sim, at, rank, MpiResp::ProbeDone { status: Some(st) });
        }
        (None, false) => {
            w.resume(rank, MpiResp::ProbeDone { status: None });
        }
        (None, true) => {
            w.engine.blocked[rank] = Some(Blocked::Probe { src, tag });
        }
    }
}

pub(crate) fn probe_match(e: &BcsMpi, rank: usize, src: SrcSel, tag: TagSel) -> Option<Status> {
    let node = e.node_of(rank);
    e.nic[node.0]
        .remote_sends
        .iter()
        .find(|rs| rs.dst_rank == rank && src.matches(rs.src_rank) && tag.matches(rs.tag))
        .map(|rs| Status {
            source: rs.src_rank,
            tag: rs.tag,
            bytes: rs.bytes,
        })
}

/// After matching, satisfy any blocking probes on this node (they restart
/// at the next slice boundary like every blocking primitive).
pub(crate) fn check_blocked_probes(w: &mut BW, _sim: &mut Sim<BW>, node: qsnet::NodeId) {
    let ranks: Vec<usize> = w.engine.layout.ranks_on(node).collect();
    for rank in ranks {
        if let Some(Blocked::Probe { src, tag }) = &w.engine.blocked[rank] {
            let (src, tag) = (*src, *tag);
            if let Some(st) = probe_match(&w.engine, rank, src, tag) {
                w.engine.blocked[rank] = None;
                w.engine
                    .restart_queue
                    .push((rank, MpiResp::ProbeDone { status: Some(st) }));
            }
        }
    }
}

// ----------------------------------------------------------------------
// DEM — descriptor exchange (BS)
// ----------------------------------------------------------------------

/// BS work for one node: deliver every snapshot descriptor to its
/// destination BR. The node's DEM is done when the NIC thread has processed
/// the queue and every descriptor has landed.
pub(crate) fn node_begin_dem(w: &mut BW, sim: &mut Sim<BW>, node: qsnet::NodeId) {
    let descs = std::mem::take(&mut w.engine.nic[node.0].send_exchanging);
    let n = descs.len() as u32;
    w.engine.stats.descriptors_exchanged += n as u64;
    // One work item per descriptor delivery, plus one for the NIC thread's
    // own processing pass.
    w.engine.nic[node.0].outstanding = n + 1;
    let desc_cost = w.engine.cfg.desc_cost;
    let desc_bytes = w.engine.cfg.desc_bytes;

    let retry = w.engine.cfg.retry;
    for d in descs {
        let dst_node = w.engine.node_of(d.dst_rank);
        let remote = RemoteSend {
            msg: d.msg,
            src_rank: d.src_rank,
            dst_rank: d.dst_rank,
            tag: d.tag,
            bytes: d.bytes,
            send_req: d.req,
        };
        match retry {
            None => {
                w.engine
                    .bcs
                    .fabric
                    .put(sim, node, dst_node, desc_bytes, move |w: &mut BW, sim| {
                        w.engine.nic[dst_node.0].remote_sends.push(remote);
                        crate::protocol::work_item_done(w, sim, node);
                        mpi_api::runtime::drain(w, sim);
                    });
            }
            Some(policy) => {
                let deliver: bcs_core::retry::RetryFn<BW> =
                    std::rc::Rc::new(move |w: &mut BW, sim| {
                        w.engine.nic[dst_node.0].remote_sends.push(remote.clone());
                        crate::protocol::work_item_done(w, sim, node);
                        mpi_api::runtime::drain(w, sim);
                    });
                bcs_core::retry::reliable_put(
                    w,
                    sim,
                    node,
                    dst_node,
                    desc_bytes,
                    policy,
                    deliver,
                    transfer_abort(dst_node, "DEM descriptor put"),
                );
            }
        }
    }
    // NIC thread processing time for the whole queue.
    let cost = desc_cost * (n.max(1) as u64);
    sim.schedule_in(cost, move |w: &mut BW, sim| {
        crate::protocol::work_item_done(w, sim, node);
        mpi_api::runtime::drain(w, sim);
    });
}

// ----------------------------------------------------------------------
// MSM — matching and chunk scheduling (BR)
// ----------------------------------------------------------------------

/// BR work for one node: allocate budget to in-flight transfers, match new
/// remote send descriptors against eligible local receives, schedule chunks,
/// and kick off collective eligibility queries.
pub(crate) fn node_begin_msm(w: &mut BW, sim: &mut Sim<BW>, node: qsnet::NodeId) {
    let mut work_items = 1u32; // the matching pass itself
    let mut processed = 0u64;

    // 1. Continuation chunks of partially-moved messages, in match order
    //    (§4.3: "the remaining chunks in the following time slices").
    {
        let e = &mut w.engine;
        let nic = &mut e.nic[node.0];
        let mut sched = std::mem::take(&mut nic.sched);
        debug_assert!(sched.is_empty());
        for item in &nic.inflight {
            let remaining = item.total - item.moved;
            if remaining == 0 {
                continue;
            }
            let already: u64 = sched
                .iter()
                .filter(|&&(m, _)| m == item.msg)
                .map(|&(_, c)| c)
                .sum();
            let chunk = remaining
                .saturating_sub(already)
                .min(e.src_budget[item.src_node.0])
                .min(e.dst_budget[node.0]);
            if chunk > 0 {
                e.src_budget[item.src_node.0] -= chunk;
                e.dst_budget[node.0] -= chunk;
                sched.push((item.msg, chunk));
            }
            processed += 1;
        }
        nic.sched = sched;
    }

    // 2. New matches: remote send descriptors in arrival order against the
    //    first eligible receive in post order.
    let mut completions: Vec<(ReqId, ReqId)> = Vec::new(); // zero-byte messages
    {
        let e = &mut w.engine;
        // Take the two queues out of the NIC so the matching loop can also
        // touch budgets, stats and the request table.
        let incoming = std::mem::take(&mut e.nic[node.0].remote_sends);
        let mut recv_posted = std::mem::take(&mut e.nic[node.0].recv_posted);
        let mut unmatched: Vec<RemoteSend> = Vec::with_capacity(incoming.len());
        for rs in incoming {
            processed += 1;
            // The BR matches against the receive-descriptor list as of MSM
            // execution (§4.3) — no slice-age requirement.
            let pos = recv_posted.iter().position(|rd| {
                rd.dst_rank == rs.dst_rank
                    && rd.src.matches(rs.src_rank)
                    && rd.tag.matches(rs.tag)
            });
            match pos {
                None => unmatched.push(rs),
                Some(i) => {
                    let rd = recv_posted.remove(i);
                    e.stats.matches += 1;
                    let src_node = e.layout.node_of(rs.src_rank);
                    let total = rs.bytes as u64;
                    if total == 0 {
                        // Metadata-only message: complete in MSM.
                        completions.push((rs.send_req, rd.req));
                        let st = e.reqs.get_mut(&rd.req).unwrap();
                        st.data = Some(Vec::new());
                        st.status = Some(Status {
                            source: rs.src_rank,
                            tag: rs.tag,
                            bytes: 0,
                        });
                        continue;
                    }
                    let item = MatchItem {
                        msg: rs.msg,
                        src_node,
                        src_rank: rs.src_rank,
                        dst_rank: rs.dst_rank,
                        tag: rs.tag,
                        send_req: rs.send_req,
                        recv_req: rd.req,
                        total,
                        moved: 0,
                    };
                    let chunk = total
                        .min(e.src_budget[src_node.0])
                        .min(e.dst_budget[node.0]);
                    if chunk > 0 {
                        e.src_budget[src_node.0] -= chunk;
                        e.dst_budget[node.0] -= chunk;
                        e.nic[node.0].sched.push((item.msg, chunk));
                    }
                    if chunk < total {
                        e.stats.chunked_messages += 1;
                    }
                    e.nic[node.0].inflight.push(item);
                }
            }
        }
        // recv_posted was taken empty-swapped above; restore leftovers plus
        // anything posted while the loop ran (nothing can post mid-event,
        // but be defensive about ordering).
        let nic = &mut e.nic[node.0];
        debug_assert!(nic.recv_posted.is_empty());
        nic.recv_posted = recv_posted;
        nic.remote_sends = unmatched;
    }
    for (sreq, rreq) in completions {
        BcsMpi::complete_req(w, sim, sreq);
        BcsMpi::complete_req(w, sim, rreq);
    }

    // 3. Collective eligibility queries (Compare-And-Write from the master
    //    node, §4.4).
    work_items += crate::coll::msm_queries(w, sim, node);

    // 4. Blocking probes see the still-unmatched descriptors.
    check_blocked_probes(w, sim, node);

    // The matching pass costs NIC-thread time proportional to the
    // descriptors examined.
    let cost = w.engine.cfg.desc_cost * processed.max(1);
    w.engine.nic[node.0].outstanding = work_items;
    sim.schedule_in(cost, move |w: &mut BW, sim| {
        crate::protocol::work_item_done(w, sim, node);
        mpi_api::runtime::drain(w, sim);
    });
}

// ----------------------------------------------------------------------
// P2P microphase — data transmission (DH)
// ----------------------------------------------------------------------

/// DH work for one node: one one-sided get per scheduled chunk.
pub(crate) fn node_begin_p2p(w: &mut BW, sim: &mut Sim<BW>, node: qsnet::NodeId) {
    let sched = std::mem::take(&mut w.engine.nic[node.0].sched);
    if sched.is_empty() {
        w.engine.nic[node.0].outstanding = 1;
        let cost = w.engine.cfg.desc_cost;
        sim.schedule_in(cost, move |w: &mut BW, sim| {
            crate::protocol::work_item_done(w, sim, node);
            mpi_api::runtime::drain(w, sim);
        });
        return;
    }
    w.engine.nic[node.0].outstanding = sched.len() as u32;
    let hdr = w.engine.cfg.desc_bytes;
    let retry = w.engine.cfg.retry;
    let trace = std::env::var_os("BCS_TRACE_P2P").is_some();
    for (msg, chunk) in sched {
        let src_node = w.engine.nic[node.0]
            .inflight
            .iter()
            .find(|it| it.msg == msg)
            .expect("scheduled chunk without match item")
            .src_node;
        w.engine.stats.chunks += 1;
        w.engine.stats.p2p_bytes += chunk;
        match retry {
            None => {
                let t = w.engine
                    .bcs
                    .fabric
                    .get(sim, node, src_node, chunk + hdr, move |w: &mut BW, sim| {
                        chunk_arrived(w, sim, node, msg, chunk);
                        crate::protocol::work_item_done(w, sim, node);
                        mpi_api::runtime::drain(w, sim);
                    });
                if trace {
                    eprintln!("  p2p get {node} <- {src_node} {chunk}B deliver at {t}");
                }
            }
            Some(policy) => {
                let deliver: bcs_core::retry::RetryFn<BW> =
                    std::rc::Rc::new(move |w: &mut BW, sim| {
                        chunk_arrived(w, sim, node, msg, chunk);
                        crate::protocol::work_item_done(w, sim, node);
                        mpi_api::runtime::drain(w, sim);
                    });
                bcs_core::retry::reliable_get(
                    w,
                    sim,
                    node,
                    src_node,
                    chunk + hdr,
                    policy,
                    deliver,
                    transfer_abort(src_node, "P2P chunk get"),
                );
            }
        }
    }
}

/// Abort hook of a reliable transfer: retries exhausted means the endpoint
/// is unreachable — declare it failed so the run driver halts the machine
/// (recovery or clean abort is the caller's decision).
fn transfer_abort(peer: qsnet::NodeId, what: &'static str) -> bcs_core::retry::RetryFn<BW> {
    std::rc::Rc::new(move |w: &mut BW, sim: &mut Sim<BW>| {
        if w.engine.failed.is_none() {
            w.engine.failed = Some(crate::engine::FailureInfo {
                node: peer,
                at: sim.now(),
                reason: format!("{what} aborted after retries"),
            });
        }
    })
}

fn chunk_arrived(w: &mut BW, sim: &mut Sim<BW>, node: qsnet::NodeId, msg: MsgId, chunk: u64) {
    let e = &mut w.engine;
    let idx = e.nic[node.0]
        .inflight
        .iter()
        .position(|it| it.msg == msg)
        .expect("chunk for unknown match item");
    let done = {
        let item = &mut e.nic[node.0].inflight[idx];
        item.moved += chunk;
        debug_assert!(item.moved <= item.total);
        item.moved == item.total
    };
    if done {
        let item = e.nic[node.0].inflight.remove(idx);
        let payload = e
            .payloads
            .remove(&item.msg)
            .expect("payload vanished before transfer completed");
        {
            let st = e.reqs.get_mut(&item.recv_req).unwrap();
            st.data = Some(payload);
            st.status = Some(Status {
                source: item.src_rank,
                tag: item.tag,
                bytes: item.total as usize,
            });
        }
        BcsMpi::complete_req(w, sim, item.recv_req);
        BcsMpi::complete_req(w, sim, item.send_req);
    }
}
