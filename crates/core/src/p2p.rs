//! Point-to-point: descriptor posting, the descriptor exchange microphase
//! (BS), matching and chunk scheduling (BR), and the data transmission (DH).
//!
//! Faithful to §4.3 and Figure 6:
//!
//! 1. a send posts a descriptor to the BS; a receive posts to the BR;
//! 2. DEM: the BS delivers each send descriptor posted during slice `i-1`
//!    to the BR of the destination node;
//! 3. MSM: the BR matches the remote send-descriptor list against the local
//!    receive-descriptor list (first match in arrival/post order — MPI
//!    non-overtaking), builds a matching descriptor, and schedules it; a
//!    message that cannot be transmitted within the slice's bandwidth budget
//!    is split into chunks, the first scheduled now, the rest in following
//!    slices;
//! 4. P2P microphase: the DH of the *receiving* node performs a one-sided
//!    get for every scheduled chunk — no intervention from either
//!    application process.
//!
//! The BR's queues are held in the [`crate::match_index`] structures, so
//! matching, probing and chunk bookkeeping stay sub-linear at large
//! descriptor counts while producing bit-identical results to the
//! list-scan specification (`match_index::reference`).

use crate::engine::{BW, Blocked, BcsMpi, ReqKind};
use crate::match_index::{InflightQueue, RecvIndex, RecvSel, SendIndex, SendKey};
use mpi_api::call::{MpiResp, ReqId};
use mpi_api::message::{SrcSel, Status, TagSel};
use mpi_api::payload::Payload;
use mpi_api::runtime::resume_at;
use simcore::Sim;
use std::sync::Arc;

/// Identifier of one in-flight message (sender-assigned).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId(pub u64);

/// A send descriptor in BS memory.
#[derive(Clone)]
pub(crate) struct SendDesc {
    pub msg: MsgId,
    pub src_rank: usize,
    pub dst_rank: usize,
    pub tag: i32,
    pub bytes: usize,
    pub req: ReqId,
}

/// A send descriptor as received by the destination BR. The envelope triple
/// lives in the [`SendKey`] it is indexed under.
#[derive(Clone)]
pub(crate) struct RemoteSend {
    pub msg: MsgId,
    pub bytes: usize,
    pub send_req: ReqId,
}

/// A matching descriptor: transfer in progress, owned by the receiving node.
#[allow(dead_code)] // dst_rank kept for diagnostics/tracing
#[derive(Clone)]
pub(crate) struct MatchItem {
    pub msg: MsgId,
    pub src_node: qsnet::NodeId,
    pub src_rank: usize,
    pub dst_rank: usize,
    pub tag: i32,
    pub send_req: ReqId,
    pub recv_req: ReqId,
    pub total: u64,
    pub moved: u64,
}

/// Per-node NIC-thread state (BS + BR + DH queues).
///
/// Held in the engine behind an `Arc` and mutated through
/// `Arc::make_mut`: a checkpoint capture clones only the `Arc`s, and a
/// node's state is deep-copied lazily, the first time it changes after a
/// capture — so checkpointing an idle node is a refcount bump regardless
/// of how deep its queues are. Per-microphase transients (`outstanding`
/// work counts, the slice's chunk schedule) live directly in the engine so
/// protocol bookkeeping never unshares an idle node.
#[derive(Clone, Default)]
pub(crate) struct NicState {
    /// Send descriptors posted by local processes (BS input FIFO).
    pub send_posted: Vec<SendDesc>,
    /// Snapshot taken at the slice strobe: descriptors to exchange in DEM.
    pub send_exchanging: Vec<SendDesc>,
    /// Receive descriptors posted by local processes (BR), indexed by
    /// selector class, matched in post order.
    pub recv_posted: RecvIndex<ReqId>,
    /// Send descriptors received from remote BSs, in arrival order (BR),
    /// indexed by envelope.
    pub remote_sends: SendIndex<RemoteSend>,
    /// Matching descriptors with bytes still to move (BR/DH), in match
    /// order.
    pub inflight: InflightQueue<MsgId, MatchItem>,
    /// Set when a receive is posted, cleared by the MSM pass. While clear,
    /// the retained unmatched backlog provably cannot match (the receive
    /// set has only shrunk since it was last examined) and is skipped.
    pub recvs_since_msm: bool,
}

impl NicState {
    pub fn describe(&self) -> String {
        if self.send_posted.is_empty()
            && self.recv_posted.is_empty()
            && self.remote_sends.is_empty()
            && self.inflight.is_empty()
        {
            return String::new();
        }
        format!(
            "{} sends posted, {} recvs posted, {} remote sends, {} in flight",
            self.send_posted.len() + self.send_exchanging.len(),
            self.recv_posted.len(),
            self.remote_sends.len(),
            self.inflight.len()
        )
    }
}

// ----------------------------------------------------------------------
// Descriptor posting (application side)
// ----------------------------------------------------------------------

// PANIC-OK: per-rank tables are sized by the layout at startup and rank

// indices come from the harness; a miss is a construction bug, not input.

pub(crate) fn post_send(
    w: &mut BW,
    sim: &mut Sim<BW>,
    rank: usize,
    dest: usize,
    tag: i32,
    data: Payload,
    blocking: bool,
) {
    let e = &mut w.engine;
    let now = sim.now();
    let msg = e.alloc_msg();
    let req = e.alloc_req(rank, ReqKind::Send, now);
    let node = e.node_of(rank);
    let bytes = data.len();
    e.payloads.insert(msg, data);
    Arc::make_mut(&mut e.nic[node.0]).send_posted.push(SendDesc {
        msg,
        src_rank: rank,
        dst_rank: dest,
        tag,
        bytes,
        req,
    });
    if blocking {
        e.blocked[rank] = Some(Blocked::SendDone(req));
    } else {
        let at = now + e.cfg.post_cost;
        resume_at(w, sim, at, rank, MpiResp::Req(req));
    }
}

// PANIC-OK: per-rank tables are sized by the layout at startup and rank

// indices come from the harness; a miss is a construction bug, not input.

pub(crate) fn post_recv(
    w: &mut BW,
    sim: &mut Sim<BW>,
    rank: usize,
    src: SrcSel,
    tag: TagSel,
    blocking: bool,
) {
    let e = &mut w.engine;
    let now = sim.now();
    let req = e.alloc_req(rank, ReqKind::Recv, now);
    let node = e.node_of(rank);
    let nic = Arc::make_mut(&mut e.nic[node.0]);
    nic.recv_posted.post(
        RecvSel {
            dst_rank: rank,
            src,
            tag,
        },
        req,
    );
    nic.recvs_since_msm = true;
    if blocking {
        e.blocked[rank] = Some(Blocked::WaitOne(req));
    } else {
        let at = now + e.cfg.post_cost;
        resume_at(w, sim, at, rank, MpiResp::Req(req));
    }
}

/// MPI_Probe / MPI_Iprobe: a message is visible once its send descriptor
/// has reached this node's BR and is not yet matched.
// PANIC-OK: `blocked` is sized per rank at startup; ranks come from the
// harness layout.
pub(crate) fn probe(
    w: &mut BW,
    sim: &mut Sim<BW>,
    rank: usize,
    src: SrcSel,
    tag: TagSel,
    blocking: bool,
) {
    let status = probe_match(&w.engine, rank, src, tag);
    match (status, blocking) {
        (Some(st), _) => {
            let at = sim.now() + w.engine.cfg.post_cost;
            resume_at(w, sim, at, rank, MpiResp::ProbeDone { status: Some(st) });
        }
        (None, false) => {
            w.resume(rank, MpiResp::ProbeDone { status: None });
        }
        (None, true) => {
            w.engine.blocked[rank] = Some(Blocked::Probe { src, tag });
        }
    }
}

// PANIC-OK: nic/remote_sends are sized per node at startup; node ids come

// from the fixed topology.

pub(crate) fn probe_match(e: &BcsMpi, rank: usize, src: SrcSel, tag: TagSel) -> Option<Status> {
    let node = e.node_of(rank);
    e.nic[node.0]
        .remote_sends
        .probe(rank, src, tag)
        .map(|(key, rs)| Status {
            source: key.src_rank,
            tag: key.tag,
            bytes: rs.bytes,
        })
}

/// After matching, satisfy any blocking probes on this node (they restart
/// at the next slice boundary like every blocking primitive).
// PANIC-OK: `blocked` is sized per rank at startup; ranks come from the
// layout iterator over the same table.
pub(crate) fn check_blocked_probes(w: &mut BW, _sim: &mut Sim<BW>, node: qsnet::NodeId) {
    let ranks: Vec<usize> = w.engine.layout.ranks_on(node).collect();
    for rank in ranks {
        if let Some(Blocked::Probe { src, tag }) = &w.engine.blocked[rank] {
            let (src, tag) = (*src, *tag);
            if let Some(st) = probe_match(&w.engine, rank, src, tag) {
                w.engine.blocked[rank] = None;
                w.engine
                    .restart_queue
                    .push((rank, MpiResp::ProbeDone { status: Some(st) }));
            }
        }
    }
}

// ----------------------------------------------------------------------
// DEM — descriptor exchange (BS)
// ----------------------------------------------------------------------

/// BS work for one node: deliver every snapshot descriptor to its
/// destination BR. The node's DEM is done when the NIC thread has processed
/// the queue and every descriptor has landed.
// PANIC-OK: descriptor queues and per-node NIC state are populated by the
// posting path before the strobe schedules this DEM; indices are node ids
// from the fixed topology.
pub(crate) fn node_begin_dem(w: &mut BW, sim: &mut Sim<BW>, node: qsnet::NodeId) {
    let descs = if w.engine.nic[node.0].send_exchanging.is_empty() {
        Vec::new() // don't unshare an idle node's state
    } else {
        std::mem::take(&mut Arc::make_mut(&mut w.engine.nic[node.0]).send_exchanging)
    };
    let n = descs.len() as u32;
    w.engine.stats.descriptors_exchanged += n as u64;
    let desc_cost = w.engine.cfg.desc_cost;
    let desc_bytes = w.engine.cfg.desc_bytes;
    let retry = w.engine.cfg.retry;

    if w.engine.cfg.coalesce.is_some() && !descs.is_empty() {
        node_begin_dem_coalesced(w, sim, node, descs);
        // NIC thread processing time is per descriptor regardless of how
        // the wire operations are batched.
        let cost = desc_cost * (n.max(1) as u64);
        sim.schedule_in(cost, move |w: &mut BW, sim| {
            crate::protocol::work_item_done(w, sim, node);
            mpi_api::runtime::drain(w, sim);
        });
        return;
    }

    // One work item per descriptor delivery, plus one for the NIC thread's
    // own processing pass.
    w.engine.outstanding[node.0] = n + 1;
    for d in descs {
        let dst_node = w.engine.node_of(d.dst_rank);
        let key = SendKey {
            dst_rank: d.dst_rank,
            src_rank: d.src_rank,
            tag: d.tag,
        };
        let remote = RemoteSend {
            msg: d.msg,
            bytes: d.bytes,
            send_req: d.req,
        };
        // One delivery path for both transports: the descriptor sits in a
        // take-once slot so the closure is `Fn` (as the retry layer needs)
        // yet moves the payload out without cloning on delivery. The retry
        // layer invokes it at most once (drops mean it never fires).
        let slot = std::cell::Cell::new(Some((key, remote)));
        let deliver = move |w: &mut BW, sim: &mut Sim<BW>| {
            let (key, remote) = slot.take().expect("DEM descriptor delivered twice");
            Arc::make_mut(&mut w.engine.nic[dst_node.0])
                .remote_sends
                .push(key, remote);
            crate::protocol::work_item_done(w, sim, node);
            mpi_api::runtime::drain(w, sim);
        };
        match retry {
            None => {
                w.engine
                    .bcs
                    .fabric
                    .put(sim, node, dst_node, desc_bytes, deliver);
            }
            Some(policy) => {
                bcs_core::retry::reliable_put(
                    w,
                    sim,
                    node,
                    dst_node,
                    desc_bytes,
                    policy,
                    std::rc::Rc::new(deliver),
                    transfer_abort(dst_node, "DEM descriptor put"),
                );
            }
        }
    }
    // NIC thread processing time for the whole queue.
    let cost = desc_cost * (n.max(1) as u64);
    sim.schedule_in(cost, move |w: &mut BW, sim| {
        crate::protocol::work_item_done(w, sim, node);
        mpi_api::runtime::drain(w, sim);
    });
}

/// DEM with descriptor coalescing (`cfg.coalesce`): all send descriptors
/// bound for the same destination node travel as *one* block — a single
/// control packet whose scatter header the receiving BR unpacks into its
/// arrival list (see `bcs_core::coalesce` for the modeled wire layout).
/// Descriptors keep their posting order inside a block, so MPI
/// non-overtaking per (src, dst) pair is preserved.
// PANIC-OK: coalesce runs exist exactly for the descriptors grouped two
// lines above; per-destination bins are non-empty by construction.
fn node_begin_dem_coalesced(
    w: &mut BW,
    sim: &mut Sim<BW>,
    node: qsnet::NodeId,
    descs: Vec<SendDesc>,
) {
    let ccfg = w.engine.cfg.coalesce.expect("coalesced DEM without coalesce cfg");
    let desc_bytes = w.engine.cfg.desc_bytes;
    let retry = w.engine.cfg.retry;
    let mut entries: Vec<Option<(qsnet::NodeId, SendKey, RemoteSend)>> =
        Vec::with_capacity(descs.len());
    for d in descs {
        let dst_node = w.engine.node_of(d.dst_rank);
        let key = SendKey {
            dst_rank: d.dst_rank,
            src_rank: d.src_rank,
            tag: d.tag,
        };
        let remote = RemoteSend {
            msg: d.msg,
            bytes: d.bytes,
            send_req: d.req,
        };
        entries.push(Some((dst_node, key, remote)));
    }
    let items: Vec<(usize, u64)> = entries
        .iter()
        .map(|e| {
            let (dst_node, _, _) = e.as_ref().expect("entry just built");
            (dst_node.0, desc_bytes)
        })
        .collect();
    let (singles, gathers) = bcs_core::coalesce::plan(&items, &ccfg);
    // One work item per wire operation, plus the NIC processing pass the
    // caller schedules.
    w.engine.outstanding[node.0] = (singles.len() + gathers.len() + 1) as u32;
    for i in singles {
        let (dst_node, key, remote) = entries[i].take().expect("single issued twice");
        let slot = std::cell::Cell::new(Some((key, remote)));
        let deliver = move |w: &mut BW, sim: &mut Sim<BW>| {
            let (key, remote) = slot.take().expect("DEM descriptor delivered twice");
            Arc::make_mut(&mut w.engine.nic[dst_node.0])
                .remote_sends
                .push(key, remote);
            crate::protocol::work_item_done(w, sim, node);
            mpi_api::runtime::drain(w, sim);
        };
        match retry {
            None => {
                w.engine
                    .bcs
                    .fabric
                    .put(sim, node, dst_node, desc_bytes, deliver);
            }
            Some(policy) => {
                bcs_core::retry::reliable_put(
                    w,
                    sim,
                    node,
                    dst_node,
                    desc_bytes,
                    policy,
                    std::rc::Rc::new(deliver),
                    transfer_abort(dst_node, "DEM descriptor put"),
                );
            }
        }
    }
    for g in gathers {
        let dst_node = qsnet::NodeId(g.peer);
        let batch: Vec<(SendKey, RemoteSend)> = g
            .entries
            .iter()
            .map(|&i| {
                let (_, key, remote) = entries[i].take().expect("entry gathered twice");
                (key, remote)
            })
            .collect();
        w.engine.stats.dem_blocks += 1;
        w.engine.stats.dem_block_msgs += batch.len() as u64;
        w.engine
            .bcs
            .fabric
            .note_gather(batch.len() as u64, batch.len() as u64 * desc_bytes);
        let slot = std::cell::Cell::new(Some(batch));
        let deliver = move |w: &mut BW, sim: &mut Sim<BW>| {
            let batch = slot.take().expect("DEM block delivered twice");
            let nic = Arc::make_mut(&mut w.engine.nic[dst_node.0]);
            for (key, remote) in batch {
                nic.remote_sends.push(key, remote);
            }
            crate::protocol::work_item_done(w, sim, node);
            mpi_api::runtime::drain(w, sim);
        };
        // The packed descriptors are NIC metadata, not payload: the block
        // rides the wire as one header-sized control packet, exactly like
        // a microstrobe — that is the whole point of the batching.
        match retry {
            None => {
                w.engine
                    .bcs
                    .fabric
                    .put(sim, node, dst_node, ccfg.block_hdr_bytes, deliver);
            }
            Some(policy) => {
                bcs_core::retry::reliable_put(
                    w,
                    sim,
                    node,
                    dst_node,
                    ccfg.block_hdr_bytes,
                    policy,
                    std::rc::Rc::new(deliver),
                    transfer_abort(dst_node, "DEM descriptor block put"),
                );
            }
        }
    }
}

// ----------------------------------------------------------------------
// MSM — matching and chunk scheduling (BR)
// ----------------------------------------------------------------------

/// BR work for one node: allocate budget to in-flight transfers, match new
/// remote send descriptors against eligible local receives, schedule chunks,
/// and kick off collective eligibility queries.
// PANIC-OK: MSM only walks descriptors the DEM already delivered into this
// node's BR; every queue entry it unwraps was inserted by that exchange and
// per-rank/per-node tables are sized by the fixed layout.
pub(crate) fn node_begin_msm(w: &mut BW, sim: &mut Sim<BW>, node: qsnet::NodeId) {
    let mut work_items = 1u32; // the matching pass itself
    let mut processed = 0u64;

    // 1. Continuation chunks of partially-moved messages, in match order
    //    (§4.3: "the remaining chunks in the following time slices").
    {
        let e = &mut w.engine;
        let mut sched = std::mem::take(&mut e.sched[node.0]);
        debug_assert!(sched.is_empty());
        for item in e.nic[node.0].inflight.iter() {
            // Completed transfers leave the queue in `chunk_arrived` and
            // zero-byte messages never enter it, so bytes always remain.
            let remaining = item.total - item.moved;
            debug_assert!(remaining > 0);
            let chunk = remaining
                .min(e.src_budget.get(item.src_node.0))
                .min(e.dst_budget.get(node.0));
            if chunk > 0 {
                e.src_budget.sub(item.src_node.0, chunk);
                e.dst_budget.sub(node.0, chunk);
                sched.push((item.msg, chunk));
            }
            processed += 1;
        }
        e.sched[node.0] = sched;
    }

    // 2. New matches: remote send descriptors in arrival order against the
    //    first eligible receive in post order. If no receive has been
    //    posted since the last pass, the examined backlog cannot match (the
    //    receive set has only shrunk) — the BR still walks the list, so its
    //    NIC-thread cost is charged, but no matching work is done for it.
    let mut completions: Vec<(ReqId, ReqId)> = Vec::new(); // zero-byte messages
    {
        let e = &mut w.engine;
        let fresh_recvs = e.nic[node.0].recvs_since_msm;
        let has_new =
            e.nic[node.0].remote_sends.len() > e.nic[node.0].remote_sends.examined_len();
        let incoming = if fresh_recvs {
            let nic = Arc::make_mut(&mut e.nic[node.0]);
            nic.recvs_since_msm = false;
            nic.remote_sends.drain_all()
        } else {
            processed += e.nic[node.0].remote_sends.examined_len() as u64;
            if has_new {
                Arc::make_mut(&mut e.nic[node.0]).remote_sends.drain_new()
            } else {
                Vec::new() // idle BR: nothing to examine, nothing unshared
            }
        };

        // Schedule compilation (crate::schedule): on a full pass — every
        // unmatched descriptor drained, current receive set in hand — the
        // slice's input shape is fingerprinted and the detector decides
        // whether to replay a compiled schedule, record one, or fall
        // through to plain indexed matching.
        let mut action = crate::schedule::SliceAction::Indexed;
        let mut fp_val = 0u64;
        if let Some(sc) = e.cfg.sched_compile {
            if fresh_recvs && !incoming.is_empty() {
                let mut fp = crate::schedule::FpBuilder::new();
                fp.word(incoming.len() as u64);
                for (key, rs) in &incoming {
                    fp.arrival(key, rs.bytes as u64);
                }
                // Receive side: the index maintains this digest at post
                // time, so a replay streak never re-walks the posted set.
                fp.word(Arc::make_mut(&mut e.nic[node.0]).recv_posted.shape_digest());
                fp_val = fp.finish();
                action = e.sched_detect[node.0].observe(fp_val, sc.detect_after);
            }
        }

        let mut replayed = false;
        if action == crate::schedule::SliceAction::Replay {
            // Validate before touching anything: the pairing itself is
            // guaranteed by the fingerprint; only the *budgets* are global
            // state other nodes' MSM passes drain concurrently. The
            // indexed path would chunk a message that no longer fits — the
            // compiled plan cannot, so a shortfall falls back wholesale.
            let c = e.sched_detect[node.0].compiled().expect("Replay without schedule");
            // Budget needs are aggregated per source at compile time
            // (`Compiled::new`), so this pass is O(distinct sources).
            let ok = c.pairs.len() == incoming.len()
                && e.nic[node.0].recv_posted.len() == c.pairs.len()
                && c.dst_need <= e.dst_budget.get(node.0)
                && c.src_need
                    .iter()
                    .all(|&(s, need)| need <= e.src_budget.get(s as usize));
            if ok {
                // Replay: the same externally visible transitions as the
                // indexed pass below — stats, budget arithmetic, schedule
                // and in-flight push order — minus all matching work. The
                // budget debit happens as precomputed aggregates: budgets
                // are counters, so the sum of per-pair subs and one sub of
                // the per-source sum are the same arithmetic.
                let pairs = c.pairs.clone();
                let src_need = c.src_need.clone();
                let dst_need = c.dst_need;
                for (s, need) in src_need {
                    e.src_budget.sub(s as usize, need);
                }
                e.dst_budget.sub(node.0, dst_need);
                e.stats.matches += pairs.len() as u64;
                let recvs = Arc::make_mut(&mut e.nic[node.0]).recv_posted.take_all();
                debug_assert_eq!(recvs.len(), pairs.len());
                for p in &pairs {
                    let (key, rs) = &incoming[p.arrival as usize];
                    let (_sel, recv_req) = recvs[p.recv as usize];
                    e.sched[node.0].push((rs.msg, p.total));
                    Arc::make_mut(&mut e.nic[node.0]).inflight.push(
                        rs.msg,
                        MatchItem {
                            msg: rs.msg,
                            src_node: qsnet::NodeId(p.src_node as usize),
                            src_rank: key.src_rank,
                            dst_rank: key.dst_rank,
                            tag: key.tag,
                            send_req: rs.send_req,
                            recv_req,
                            total: p.total,
                            moved: 0,
                        },
                    );
                }
                processed += pairs.len() as u64;
                e.sched_detect[node.0].replayed();
                replayed = true;
            } else {
                e.sched_detect[node.0].replay_fallback();
            }
        }

        if !replayed {
            let compile = action == crate::schedule::SliceAction::Compile;
            // Recording state: receive post-sequence -> position (the
            // compiled pairing pins positions, not sequences), the pairs
            // recorded so far, and whether the pattern is still eligible.
            let mut recv_pos: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
            let mut rec: Vec<crate::schedule::Pair> = Vec::new();
            let mut compile_ok = compile;
            if compile {
                for (i, (seq, _, _)) in e.nic[node.0].recv_posted.iter().enumerate() {
                    recv_pos.insert(seq, i as u32);
                }
            }
            for (i, (key, rs)) in incoming.into_iter().enumerate() {
                processed += 1;
                // The BR matches against the receive-descriptor list as of
                // MSM execution (§4.3) — no slice-age requirement.
                match Arc::make_mut(&mut e.nic[node.0]).recv_posted.match_first_seq(&key) {
                    None => {
                        compile_ok = false; // an unmatched arrival can't replay
                        Arc::make_mut(&mut e.nic[node.0]).remote_sends.push(key, rs);
                    }
                    Some((seq, _sel, recv_req)) => {
                        e.stats.matches += 1;
                        let src_node = e.layout.node_of(key.src_rank);
                        let total = rs.bytes as u64;
                        if total == 0 {
                            // Metadata-only message: complete in MSM.
                            compile_ok = false; // completes out of band
                            completions.push((rs.send_req, recv_req));
                            let st = e.reqs.get_mut(&recv_req).unwrap();
                            st.data = Some(Payload::empty());
                            st.status = Some(Status {
                                source: key.src_rank,
                                tag: key.tag,
                                bytes: 0,
                            });
                            continue;
                        }
                        let item = MatchItem {
                            msg: rs.msg,
                            src_node,
                            src_rank: key.src_rank,
                            dst_rank: key.dst_rank,
                            tag: key.tag,
                            send_req: rs.send_req,
                            recv_req,
                            total,
                            moved: 0,
                        };
                        let chunk = total
                            .min(e.src_budget.get(src_node.0))
                            .min(e.dst_budget.get(node.0));
                        if chunk > 0 {
                            e.src_budget.sub(src_node.0, chunk);
                            e.dst_budget.sub(node.0, chunk);
                            e.sched[node.0].push((item.msg, chunk));
                        }
                        if chunk < total {
                            e.stats.chunked_messages += 1;
                            compile_ok = false; // chunk plans don't replay
                        } else if compile {
                            rec.push(crate::schedule::Pair {
                                arrival: i as u32,
                                recv: recv_pos[&seq],
                                src_node: src_node.0 as u32,
                                total,
                            });
                        }
                        Arc::make_mut(&mut e.nic[node.0]).inflight.push(item.msg, item);
                    }
                }
            }
            if compile {
                // Eligible only if the pass consumed the whole input: every
                // arrival matched and fully scheduled, every receive used.
                if compile_ok && e.nic[node.0].recv_posted.is_empty() {
                    e.sched_detect[node.0]
                        .install(crate::schedule::Compiled::new(fp_val, rec));
                } else {
                    e.sched_detect[node.0].compile_failed();
                }
            }
        }
        // Everything now in the index has been examined against the current
        // receive set; until a new receive arrives it stays parked. (An
        // idle BR skips this: its watermark is already current.)
        if fresh_recvs || has_new {
            Arc::make_mut(&mut e.nic[node.0]).remote_sends.mark_examined();
        }
    }
    for (sreq, rreq) in completions {
        BcsMpi::complete_req(w, sim, sreq);
        BcsMpi::complete_req(w, sim, rreq);
    }

    // 3. Collective eligibility queries (Compare-And-Write from the master
    //    node, §4.4).
    work_items += crate::coll::msm_queries(w, sim, node);

    // 4. Blocking probes see the still-unmatched descriptors.
    check_blocked_probes(w, sim, node);

    // The matching pass costs NIC-thread time proportional to the
    // descriptors examined.
    let cost = w.engine.cfg.desc_cost * processed.max(1);
    w.engine.outstanding[node.0] = work_items;
    sim.schedule_in(cost, move |w: &mut BW, sim| {
        crate::protocol::work_item_done(w, sim, node);
        mpi_api::runtime::drain(w, sim);
    });
}

// ----------------------------------------------------------------------
// P2P microphase — data transmission (DH)
// ----------------------------------------------------------------------

/// DH work for one node: one one-sided get per scheduled chunk.
// PANIC-OK: transmissions scheduled by the MSM reference messages recorded
// in the same slice; the in-flight table entry exists until chunk_arrived
// retires it.
pub(crate) fn node_begin_p2p(w: &mut BW, sim: &mut Sim<BW>, node: qsnet::NodeId) {
    let sched = std::mem::take(&mut w.engine.sched[node.0]);
    if sched.is_empty() {
        w.engine.outstanding[node.0] = 1;
        let cost = w.engine.cfg.desc_cost;
        sim.schedule_in(cost, move |w: &mut BW, sim| {
            crate::protocol::work_item_done(w, sim, node);
            mpi_api::runtime::drain(w, sim);
        });
        return;
    }
    let hdr = w.engine.cfg.desc_bytes;
    let retry = w.engine.cfg.retry;
    // detlint: allow(D04, D11) — debug-trace gate only: toggles eprintln
    // logging on stderr and can never alter simulation state or CSV outputs,
    // so callers of this path stay determinism-clean (D11 taint neutralized).
    let trace = std::env::var_os("BCS_TRACE_P2P").is_some();

    if w.engine.cfg.coalesce.is_some() {
        node_begin_p2p_coalesced(w, sim, node, sched, trace);
        return;
    }

    w.engine.outstanding[node.0] = sched.len() as u32;
    for (msg, chunk) in sched {
        let src_node = w.engine.nic[node.0]
            .inflight
            .get(&msg)
            .expect("scheduled chunk without match item")
            .src_node;
        w.engine.stats.chunks += 1;
        w.engine.stats.p2p_bytes += chunk;
        match retry {
            None => {
                let t = w.engine
                    .bcs
                    .fabric
                    .get(sim, node, src_node, chunk + hdr, move |w: &mut BW, sim| {
                        chunk_arrived(w, sim, node, msg, chunk);
                        crate::protocol::work_item_done(w, sim, node);
                        mpi_api::runtime::drain(w, sim);
                    });
                if trace {
                    eprintln!("  p2p get {node} <- {src_node} {chunk}B deliver at {t}");
                }
            }
            Some(policy) => {
                let deliver: bcs_core::retry::RetryFn<BW> =
                    std::rc::Rc::new(move |w: &mut BW, sim| {
                        chunk_arrived(w, sim, node, msg, chunk);
                        crate::protocol::work_item_done(w, sim, node);
                        mpi_api::runtime::drain(w, sim);
                    });
                bcs_core::retry::reliable_get(
                    w,
                    sim,
                    node,
                    src_node,
                    chunk + hdr,
                    policy,
                    deliver,
                    transfer_abort(src_node, "P2P chunk get"),
                );
            }
        }
    }
}

/// P2P with chunk coalescing (`cfg.coalesce`): all small chunks this DH
/// must fetch from the same source node merge into *one* one-sided get —
/// block header + packed payloads + one scatter-header entry per chunk
/// (see `bcs_core::coalesce`). Large chunks keep their individual DMA:
/// past the threshold the per-operation overhead is already amortized.
// PANIC-OK: coalesced frames were built by this slice's MSM from live
// messages; per-frame member lists are non-empty by construction.
fn node_begin_p2p_coalesced(
    w: &mut BW,
    sim: &mut Sim<BW>,
    node: qsnet::NodeId,
    sched: Vec<(MsgId, u64)>,
    trace: bool,
) {
    let ccfg = w.engine.cfg.coalesce.expect("coalesced P2P without coalesce cfg");
    let hdr = w.engine.cfg.desc_bytes;
    let retry = w.engine.cfg.retry;
    let mut entries: Vec<(MsgId, u64, qsnet::NodeId)> = Vec::with_capacity(sched.len());
    for (msg, chunk) in sched {
        let src_node = w.engine.nic[node.0]
            .inflight
            .get(&msg)
            .expect("scheduled chunk without match item")
            .src_node;
        w.engine.stats.chunks += 1;
        w.engine.stats.p2p_bytes += chunk;
        entries.push((msg, chunk, src_node));
    }
    let items: Vec<(usize, u64)> = entries.iter().map(|&(_, chunk, sn)| (sn.0, chunk)).collect();
    let (singles, gathers) = bcs_core::coalesce::plan(&items, &ccfg);
    w.engine.outstanding[node.0] = (singles.len() + gathers.len()) as u32;
    for i in singles {
        let (msg, chunk, src_node) = entries[i];
        match retry {
            None => {
                let t = w.engine
                    .bcs
                    .fabric
                    .get(sim, node, src_node, chunk + hdr, move |w: &mut BW, sim| {
                        chunk_arrived(w, sim, node, msg, chunk);
                        crate::protocol::work_item_done(w, sim, node);
                        mpi_api::runtime::drain(w, sim);
                    });
                if trace {
                    eprintln!("  p2p get {node} <- {src_node} {chunk}B deliver at {t}");
                }
            }
            Some(policy) => {
                let deliver: bcs_core::retry::RetryFn<BW> =
                    std::rc::Rc::new(move |w: &mut BW, sim| {
                        chunk_arrived(w, sim, node, msg, chunk);
                        crate::protocol::work_item_done(w, sim, node);
                        mpi_api::runtime::drain(w, sim);
                    });
                bcs_core::retry::reliable_get(
                    w,
                    sim,
                    node,
                    src_node,
                    chunk + hdr,
                    policy,
                    deliver,
                    transfer_abort(src_node, "P2P chunk get"),
                );
            }
        }
    }
    for g in gathers {
        let src_node = qsnet::NodeId(g.peer);
        let wire = g.wire_bytes(&ccfg);
        let batch: Vec<(MsgId, u64)> =
            g.entries.iter().map(|&i| (entries[i].0, entries[i].1)).collect();
        w.engine.stats.p2p_gathers += 1;
        w.engine.stats.p2p_gather_msgs += batch.len() as u64;
        w.engine
            .bcs
            .fabric
            .note_gather(batch.len() as u64, g.payload_bytes);
        let slot = std::cell::Cell::new(Some(batch));
        let deliver = move |w: &mut BW, sim: &mut Sim<BW>| {
            let batch = slot.take().expect("P2P gather delivered twice");
            for (msg, chunk) in batch {
                chunk_arrived(w, sim, node, msg, chunk);
            }
            crate::protocol::work_item_done(w, sim, node);
            mpi_api::runtime::drain(w, sim);
        };
        match retry {
            None => {
                let t = w.engine.bcs.fabric.get(sim, node, src_node, wire, deliver);
                if trace {
                    eprintln!(
                        "  p2p gather {node} <- {src_node} {} msgs {wire}B deliver at {t}",
                        g.entries.len()
                    );
                }
            }
            Some(policy) => {
                bcs_core::retry::reliable_get(
                    w,
                    sim,
                    node,
                    src_node,
                    wire,
                    policy,
                    std::rc::Rc::new(deliver),
                    transfer_abort(src_node, "P2P gather get"),
                );
            }
        }
    }
}

/// Abort hook of a reliable transfer: retries exhausted means the endpoint
/// is unreachable — declare it failed so the run driver halts the machine
/// (recovery or clean abort is the caller's decision).
fn transfer_abort(peer: qsnet::NodeId, what: &'static str) -> bcs_core::retry::RetryFn<BW> {
    std::rc::Rc::new(move |w: &mut BW, sim: &mut Sim<BW>| {
        if w.engine.failed.is_none() {
            w.engine.failed = Some(crate::engine::FailureInfo {
                node: peer,
                at: sim.now(),
                reason: format!("{what} aborted after retries"),
            });
        }
    })
}

// PANIC-OK: a chunk arrival event is only scheduled for a message in the

// in-flight table; the entry lives until the final chunk retires it here.

fn chunk_arrived(w: &mut BW, sim: &mut Sim<BW>, node: qsnet::NodeId, msg: MsgId, chunk: u64) {
    let e = &mut w.engine;
    let done = {
        let item = Arc::make_mut(&mut e.nic[node.0])
            .inflight
            .get_mut(&msg)
            .expect("chunk for unknown match item");
        item.moved += chunk;
        debug_assert!(item.moved <= item.total);
        item.moved == item.total
    };
    if done {
        let item = Arc::make_mut(&mut e.nic[node.0]).inflight.remove(&msg).unwrap();
        let payload = e
            .payloads
            .remove(&item.msg)
            .expect("payload vanished before transfer completed");
        {
            let st = e.reqs.get_mut(&item.recv_req).unwrap();
            st.data = Some(payload);
            st.status = Some(Status {
                source: item.src_rank,
                tag: item.tag,
                bytes: item.total as usize,
            });
        }
        BcsMpi::complete_req(w, sim, item.recv_req);
        BcsMpi::complete_req(w, sim, item.send_req);
    }
}
