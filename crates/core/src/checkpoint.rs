//! Slice-boundary checkpointing of the global communication state.
//!
//! §6 of the paper: "a scheduled, deterministic communication behavior at
//! system level could provide a solid infrastructure for implementing
//! transparent fault tolerance", and §1: "the fact that the communication
//! state of all processes is known at the beginning of every time slice
//! facilitates the implementation of checkpointing and debugging
//! mechanisms."
//!
//! This module realizes that claim for the communication subsystem: at a
//! slice boundary the protocol is *quiescent* — no microphase in flight, no
//! partial matches, every in-flight transfer parked at a chunk boundary —
//! so the entire global communication state has a well-defined, serializable
//! snapshot. [`CommCheckpoint`] captures it; its digest is deterministic, so
//! two replicas (or a replay after restart) can be validated cheaply.
//!
//! Two checkpoint granularities exist:
//!
//! * [`CommCheckpoint`] — the *public, digest-friendly* view: a canonical
//!   listing of every queue, open request and collective round. Cheap to
//!   capture, cheap to compare; this is what the per-boundary digest stream
//!   in `BcsMpi::checkpoints` validates.
//! * [`CheckpointImage`] — a *restorable* snapshot (`cfg.checkpoint_images`).
//!   Its on-disk-equivalent format spans four layers, all captured at the
//!   same quiescent boundary instant:
//!
//!   | layer      | contents                                                |
//!   |------------|---------------------------------------------------------|
//!   | fabric     | per-NIC port next-free times, stats, bulk DMA sequence  |
//!   | primitives | every node's global words + pending event counts        |
//!   | engine     | NIC FIFOs (posted/exchanging sends, posted recvs,       |
//!   |            | unmatched remote sends), match lists with chunk budgets |
//!   |            | and moved-byte counts, parked payloads, open requests,  |
//!   |            | blocked ranks + restart queue, collective rounds &      |
//!   |            | counters, communicator registry, per-slice budgets,     |
//!   |            | noise RNG positions, gang state, stats/trace streams,   |
//!   |            | id allocators                                           |
//!   | runtime    | per-rank response logs + scheduled-but-undelivered      |
//!   |            | completions ([`mpi_api::runtime::RuntimeImage`])        |
//!
//!   Restoring builds a fresh engine from the image and *replays* each rank
//!   coroutine through its recorded responses (process memory is exactly a
//!   function of the responses delivered so far, so the replay is the
//!   simulation analogue of the NM's process-memory snapshot), then resumes
//!   the strobe loop at the captured boundary on the original absolute
//!   timeline.
//!
//! Capture is only legal at a slice boundary: no microphase in flight, no
//! event waiter parked, no undelivered completion in the runtime queue —
//! `capture_image` asserts all of it.

use crate::engine::{BW, BcsConfig, BcsMpi};
use mpi_api::runtime::{JobLayout, RuntimeImage};
use simcore::SimTime;

/// Snapshot of one in-flight (chunked) transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InflightEntry {
    pub msg: u64,
    pub src_rank: usize,
    pub dst_rank: usize,
    pub total: u64,
    pub moved: u64,
}

/// Snapshot of one node's NIC queues.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct NodeCheckpoint {
    /// Send descriptors awaiting exchange (msg id, dst rank, bytes).
    pub pending_sends: Vec<(u64, usize, usize)>,
    /// Posted receive descriptors (request id, dst rank).
    pub pending_recvs: Vec<(u64, usize)>,
    /// Remote send descriptors awaiting a match (msg id, src rank).
    pub unmatched: Vec<(u64, usize)>,
    /// Chunked transfers in progress.
    pub inflight: Vec<InflightEntry>,
}

/// The global communication state at a slice boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommCheckpoint {
    /// Slice number about to start.
    pub slice: u64,
    pub nodes: Vec<NodeCheckpoint>,
    /// Requests still open: (id, owner, complete).
    pub open_requests: Vec<(u64, usize, bool)>,
    /// Ranks currently suspended by the NM.
    pub suspended_ranks: Vec<usize>,
    /// Collective rounds in progress: (slot, round, arrived).
    pub open_collectives: Vec<(usize, u64, usize)>,
}

impl CommCheckpoint {
    /// A cheap, deterministic digest (FNV-1a over the canonical encoding),
    /// suitable for cross-replica validation.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(self.slice);
        for (i, n) in self.nodes.iter().enumerate() {
            mix(i as u64 ^ 0x1111);
            for &(m, d, b) in &n.pending_sends {
                mix(m);
                mix(d as u64);
                mix(b as u64);
            }
            for &(r, d) in &n.pending_recvs {
                mix(r ^ 0x2222);
                mix(d as u64);
            }
            for &(m, s) in &n.unmatched {
                mix(m ^ 0x3333);
                mix(s as u64);
            }
            for e in &n.inflight {
                mix(e.msg ^ 0x4444);
                mix(e.moved);
                mix(e.total);
            }
        }
        for &(id, owner, complete) in &self.open_requests {
            mix(id ^ 0x5555);
            mix(owner as u64);
            mix(complete as u64);
        }
        for &r in &self.suspended_ranks {
            mix(r as u64 ^ 0x6666);
        }
        for &(slot, round, arrived) in &self.open_collectives {
            mix(slot as u64 ^ 0x7777);
            mix(round);
            mix(arrived as u64);
        }
        h
    }

    /// Total bytes still to be moved by in-flight transfers.
    pub fn inflight_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .flat_map(|n| &n.inflight)
            .map(|e| e.total - e.moved)
            .sum()
    }
}

/// A restorable snapshot of the whole machine at one slice boundary: the
/// engine's full state (private), the control-memory words, the fabric
/// port clocks, and the runtime's replay log. See the module docs for the
/// format.
#[derive(Clone)]
pub struct CheckpointImage {
    /// Slice number about to start when the image was captured.
    pub slice: u64,
    /// Absolute virtual time of the boundary.
    pub captured_at: SimTime,
    /// Digest of the matching [`CommCheckpoint`] (cross-validation).
    pub digest: u64,
    /// Runtime layer: response logs + pending completions.
    pub rt: RuntimeImage,
    eng: EngineSnap,
}

/// Engine + primitives + fabric layers of an image (field-for-field clone
/// of the mutable engine state).
#[derive(Clone)]
struct EngineSnap {
    /// Shared with the live engine copy-on-write: capturing clones `Arc`s,
    /// and only nodes whose state changes after the capture are copied.
    nic: Vec<std::sync::Arc<crate::p2p::NicState>>,
    // Canonically ordered `Vec` copies of the live engine's hash maps,
    // named so they cannot be confused with the maps themselves.
    reqs_sorted: Vec<(mpi_api::call::ReqId, crate::engine::BcsReq)>,
    payloads_sorted: Vec<(crate::p2p::MsgId, mpi_api::payload::Payload)>,
    blocked: Vec<Option<crate::engine::Blocked>>,
    coll: crate::coll::CollState,
    comms: mpi_api::comm::CommRegistry,
    restart_queue: Vec<(usize, mpi_api::call::MpiResp)>,
    src_budget: crate::match_index::LazyBudget,
    dst_budget: crate::match_index::LazyBudget,
    noise: Option<mpi_api::noise::NoiseModel>,
    stats: crate::engine::BcsStats,
    checkpoints: Vec<(u64, u64)>,
    trace: Vec<crate::trace::SliceRecord>,
    trace_cursor: crate::trace::TraceCursor,
    gang: Option<crate::gang::GangState>,
    next_req: u64,
    next_msg: u64,
    words: bcs_core::WordsSnapshot,
    fabric: qsnet::FabricSnapshot,
}

/// Capture a full restorable image at the current (boundary) instant.
/// Called by the slice-start checkpoint hook when `cfg.checkpoint_images`.
pub(crate) fn capture_image(w: &mut BW, now: SimTime, digest: u64) -> CheckpointImage {
    assert!(
        w.recording(),
        "checkpoint_images requires response recording \
         (ClusterWorld::set_recording(true) in the run's setup hook)"
    );
    let rt = w.runtime_image(now);
    let e = &mut w.engine;
    // Sort the hash maps into a canonical order so two captures of the same
    // state produce identical images. Request and payload clones are
    // refcount bumps (`Payload` is a shared buffer), not byte copies.
    // detlint: allow(D02) — checkpoint capture: sorted by key immediately
    // below, so the image is canonical whatever the map order was.
    let mut reqs: Vec<_> = e.reqs.iter().map(|(&k, v)| (k, v.clone())).collect();
    reqs.sort_unstable_by_key(|(k, _)| *k);
    // detlint: allow(D02) — checkpoint capture: sorted by key immediately
    // below, so the image is canonical whatever the map order was.
    let mut payloads: Vec<_> = e.payloads.iter().map(|(&k, v)| (k, v.clone())).collect();
    payloads.sort_unstable_by_key(|(k, _)| *k);
    CheckpointImage {
        slice: e.slice,
        captured_at: now,
        digest,
        rt,
        eng: EngineSnap {
            nic: e.nic.clone(),
            reqs_sorted: reqs,
            payloads_sorted: payloads,
            blocked: e.blocked.clone(),
            coll: e.coll.clone(),
            comms: e.comms.clone(),
            restart_queue: e.restart_queue.clone(),
            src_budget: e.src_budget.clone(),
            dst_budget: e.dst_budget.clone(),
            noise: e.noise.clone(),
            stats: e.stats.clone(),
            checkpoints: e.checkpoints.clone(),
            trace: e.trace.clone(),
            trace_cursor: e.trace_cursor,
            gang: e.gang.clone(),
            next_req: e.next_req,
            next_msg: e.next_msg,
            words: e.bcs.snapshot_words(),
            fabric: e.bcs.fabric.snapshot(),
        },
    }
}

impl CheckpointImage {
    /// Deep-clone the image so it shares *nothing* with the live engine or
    /// other images: fresh NIC state behind fresh `Arc`s, payload bytes
    /// copied into fresh buffers, the response logs flattened, the fabric
    /// snapshot unshared. Restoring from the result must be byte-identical
    /// to restoring from `self` — the property `tests/fault_recovery.rs`
    /// checks to validate the copy-on-write capture path.
    /// Total bytes of payload data the image references (parked send
    /// payloads awaiting their receiver). Capturing shares these buffers
    /// with the live engine; [`Self::materialize`] copies them. Useful for
    /// sizing what a serialized image would occupy, and for selecting a
    /// representative image in benchmarks.
    pub fn payload_bytes(&self) -> usize {
        self.eng.payloads_sorted.iter().map(|(_, p)| p.len()).sum()
    }

    pub fn materialize(&self) -> CheckpointImage {
        let mut img = self.clone();
        img.rt = self.rt.materialize();
        img.eng.nic = self
            .eng
            .nic
            .iter()
            .map(|n| std::sync::Arc::new((**n).clone()))
            .collect();
        img.eng.payloads_sorted = self
            .eng
            .payloads_sorted
            .iter()
            .map(|(k, p)| (*k, mpi_api::payload::Payload::from(&p[..])))
            .collect();
        img.eng.fabric = self.eng.fabric.materialize();
        img
    }
}

impl BcsMpi {
    /// Rebuild an engine from a [`CheckpointImage`]: every layer of the
    /// image is restored verbatim; fault state (dead nodes, planned drops,
    /// degradations) is deliberately *not* part of an image — restore means
    /// the machine is whole again, and a fault-injection driver re-arms
    /// whatever faults remain on its plan. Pair with
    /// `mpi_api::runtime::resume_job` and
    /// [`crate::resume_from_boundary`] as the kickoff.
    pub fn restore_from_image(
        cfg: BcsConfig,
        layout: &JobLayout,
        img: &CheckpointImage,
    ) -> BcsMpi {
        let mut e = BcsMpi::new(cfg, layout);
        let s = &img.eng;
        e.slice = img.slice;
        e.phase = 0;
        e.slice_started_at = img.captured_at;
        e.nic = s.nic.clone();
        e.reqs = s.reqs_sorted.iter().cloned().collect();
        e.payloads = s.payloads_sorted.iter().cloned().collect();
        e.blocked = s.blocked.clone();
        e.coll = s.coll.clone();
        e.comms = s.comms.clone();
        e.restart_queue = s.restart_queue.clone();
        e.src_budget = s.src_budget.clone();
        e.dst_budget = s.dst_budget.clone();
        e.noise = s.noise.clone();
        e.stats = s.stats.clone();
        e.checkpoints = s.checkpoints.clone();
        e.trace = s.trace.clone();
        e.trace_cursor = s.trace_cursor;
        e.gang = s.gang.clone();
        e.next_req = s.next_req;
        e.next_msg = s.next_msg;
        e.bcs.restore_words(&s.words);
        e.bcs.fabric.restore(&s.fabric);
        e
    }

    /// Streaming equivalent of `capture_checkpoint().digest()`: folds the
    /// same canonical encoding, in the same order, directly into the FNV-1a
    /// accumulator without materializing a [`CommCheckpoint`]. The
    /// digest-only checkpoint path (`checkpoint_images: false`) uses this so
    /// a boundary digest allocates nothing per node and never touches a
    /// payload refcount — only the open-request triples are collected (for
    /// the canonical sort, they are three plain words each).
    pub fn checkpoint_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(self.slice);
        for (i, nic) in self.nic.iter().enumerate() {
            mix(i as u64 ^ 0x1111);
            for d in nic.send_posted.iter() {
                mix(d.msg.0);
                mix(d.dst_rank as u64);
                mix(d.bytes as u64);
            }
            for (_, sel, req) in nic.recv_posted.iter() {
                mix(req.0 ^ 0x2222);
                mix(sel.dst_rank as u64);
            }
            for (_, key, rs) in nic.remote_sends.iter() {
                mix(rs.msg.0 ^ 0x3333);
                mix(key.src_rank as u64);
            }
            for it in nic.inflight.iter() {
                mix(it.msg.0 ^ 0x4444);
                mix(it.moved);
                mix(it.total);
            }
        }
        let mut open_requests: Vec<(u64, usize, bool)> = self
            .reqs
            // detlint: allow(D02) — boundary snapshot: sorted immediately
            // below (`open_requests.sort_unstable()`) before use.
            .iter()
            .map(|(id, st)| (id.0, st.owner, st.complete))
            .collect();
        open_requests.sort_unstable();
        for (id, owner, complete) in open_requests {
            mix(id ^ 0x5555);
            mix(owner as u64);
            mix(complete as u64);
        }
        for r in 0..self.blocked.len() {
            if self.blocked[r].is_some() {
                mix(r as u64 ^ 0x6666);
            }
        }
        for (&(_comm, slot, round), st) in self.coll.rounds.iter() {
            mix(slot as u64 ^ 0x7777);
            mix(round);
            mix(st.arrived as u64);
        }
        h
    }

    /// Capture the communication state. Intended to be taken at a slice
    /// boundary (the engine's checkpoint hook does exactly that); the state
    /// is then guaranteed quiescent: no microphase is active and every
    /// scheduled chunk of the previous slice has completed.
    pub fn capture_checkpoint(&self) -> CommCheckpoint {
        let nodes = self
            .nic
            .iter()
            .map(|nic| NodeCheckpoint {
                pending_sends: nic
                    .send_posted
                    .iter()
                    .map(|d| (d.msg.0, d.dst_rank, d.bytes))
                    .collect(),
                pending_recvs: nic
                    .recv_posted
                    .iter()
                    .map(|(_, sel, req)| (req.0, sel.dst_rank))
                    .collect(),
                unmatched: nic
                    .remote_sends
                    .iter()
                    .map(|(_, key, rs)| (rs.msg.0, key.src_rank))
                    .collect(),
                inflight: nic
                    .inflight
                    .iter()
                    .map(|it| InflightEntry {
                        msg: it.msg.0,
                        src_rank: it.src_rank,
                        dst_rank: it.dst_rank,
                        total: it.total,
                        moved: it.moved,
                    })
                    .collect(),
            })
            .collect();
        let mut open_requests: Vec<(u64, usize, bool)> = self
            .reqs
            // detlint: allow(D02) — boundary snapshot: sorted immediately
            // below (`open_requests.sort_unstable()`) before use.
            .iter()
            .map(|(id, st)| (id.0, st.owner, st.complete))
            .collect();
        open_requests.sort_unstable();
        let suspended_ranks = (0..self.blocked.len())
            .filter(|&r| self.blocked[r].is_some())
            .collect();
        let open_collectives = self
            .coll
            .rounds
            .iter()
            .map(|(&(_comm, slot, round), st)| (slot, round, st.arrived))
            .collect();
        CommCheckpoint {
            slice: self.slice,
            nodes,
            open_requests,
            suspended_ranks,
            open_collectives,
        }
    }
}
