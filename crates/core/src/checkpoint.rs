//! Slice-boundary checkpointing of the global communication state.
//!
//! §6 of the paper: "a scheduled, deterministic communication behavior at
//! system level could provide a solid infrastructure for implementing
//! transparent fault tolerance", and §1: "the fact that the communication
//! state of all processes is known at the beginning of every time slice
//! facilitates the implementation of checkpointing and debugging
//! mechanisms."
//!
//! This module realizes that claim for the communication subsystem: at a
//! slice boundary the protocol is *quiescent* — no microphase in flight, no
//! partial matches, every in-flight transfer parked at a chunk boundary —
//! so the entire global communication state has a well-defined, serializable
//! snapshot. [`CommCheckpoint`] captures it; its digest is deterministic, so
//! two replicas (or a replay after restart) can be validated cheaply.
//!
//! Restoring full application state would additionally need process-memory
//! snapshots, which the NM would take during the same boundary; that part is
//! host-OS territory and out of scope here.

use crate::engine::BcsMpi;

/// Snapshot of one in-flight (chunked) transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InflightEntry {
    pub msg: u64,
    pub src_rank: usize,
    pub dst_rank: usize,
    pub total: u64,
    pub moved: u64,
}

/// Snapshot of one node's NIC queues.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct NodeCheckpoint {
    /// Send descriptors awaiting exchange (msg id, dst rank, bytes).
    pub pending_sends: Vec<(u64, usize, usize)>,
    /// Posted receive descriptors (request id, dst rank).
    pub pending_recvs: Vec<(u64, usize)>,
    /// Remote send descriptors awaiting a match (msg id, src rank).
    pub unmatched: Vec<(u64, usize)>,
    /// Chunked transfers in progress.
    pub inflight: Vec<InflightEntry>,
}

/// The global communication state at a slice boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommCheckpoint {
    /// Slice number about to start.
    pub slice: u64,
    pub nodes: Vec<NodeCheckpoint>,
    /// Requests still open: (id, owner, complete).
    pub open_requests: Vec<(u64, usize, bool)>,
    /// Ranks currently suspended by the NM.
    pub suspended_ranks: Vec<usize>,
    /// Collective rounds in progress: (slot, round, arrived).
    pub open_collectives: Vec<(usize, u64, usize)>,
}

impl CommCheckpoint {
    /// A cheap, deterministic digest (FNV-1a over the canonical encoding),
    /// suitable for cross-replica validation.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        mix(self.slice);
        for (i, n) in self.nodes.iter().enumerate() {
            mix(i as u64 ^ 0x1111);
            for &(m, d, b) in &n.pending_sends {
                mix(m);
                mix(d as u64);
                mix(b as u64);
            }
            for &(r, d) in &n.pending_recvs {
                mix(r ^ 0x2222);
                mix(d as u64);
            }
            for &(m, s) in &n.unmatched {
                mix(m ^ 0x3333);
                mix(s as u64);
            }
            for e in &n.inflight {
                mix(e.msg ^ 0x4444);
                mix(e.moved);
                mix(e.total);
            }
        }
        for &(id, owner, complete) in &self.open_requests {
            mix(id ^ 0x5555);
            mix(owner as u64);
            mix(complete as u64);
        }
        for &r in &self.suspended_ranks {
            mix(r as u64 ^ 0x6666);
        }
        for &(slot, round, arrived) in &self.open_collectives {
            mix(slot as u64 ^ 0x7777);
            mix(round);
            mix(arrived as u64);
        }
        h
    }

    /// Total bytes still to be moved by in-flight transfers.
    pub fn inflight_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .flat_map(|n| &n.inflight)
            .map(|e| e.total - e.moved)
            .sum()
    }
}

impl BcsMpi {
    /// Capture the communication state. Intended to be taken at a slice
    /// boundary (the engine's checkpoint hook does exactly that); the state
    /// is then guaranteed quiescent: no microphase is active and every
    /// scheduled chunk of the previous slice has completed.
    pub fn capture_checkpoint(&self) -> CommCheckpoint {
        let nodes = self
            .nic
            .iter()
            .map(|nic| NodeCheckpoint {
                pending_sends: nic
                    .send_posted
                    .iter()
                    .map(|d| (d.msg.0, d.dst_rank, d.bytes))
                    .collect(),
                pending_recvs: nic.recv_posted.iter().map(|r| (r.req.0, r.dst_rank)).collect(),
                unmatched: nic
                    .remote_sends
                    .iter()
                    .map(|r| (r.msg.0, r.src_rank))
                    .collect(),
                inflight: nic
                    .inflight
                    .iter()
                    .map(|it| InflightEntry {
                        msg: it.msg.0,
                        src_rank: it.src_rank,
                        dst_rank: it.dst_rank,
                        total: it.total,
                        moved: it.moved,
                    })
                    .collect(),
            })
            .collect();
        let mut open_requests: Vec<(u64, usize, bool)> = self
            .reqs
            .iter()
            .map(|(id, st)| (id.0, st.owner, st.complete))
            .collect();
        open_requests.sort_unstable();
        let suspended_ranks = (0..self.blocked.len())
            .filter(|&r| self.blocked[r].is_some())
            .collect();
        let open_collectives = self
            .coll
            .rounds
            .iter()
            .map(|(&(_comm, slot, round), st)| (slot, round, st.arrived))
            .collect();
        CommCheckpoint {
            slice: self.slice,
            nodes,
            open_requests,
            suspended_ranks,
            open_collectives,
        }
    }
}
