//! Collectives: barrier, broadcast (CH) and reduce/allreduce (RH), per §4.4
//! — extended with communicator (MPI group) support, the functionality §4.5
//! lists as the prototype's main limitation.
//!
//! Every collective call posts a descriptor to the BR and blocks. The BR
//! pre-processes descriptors: once all local ranks *of the communicator*
//! have invoked the collective, a per-(communicator, kind) flag — a BCS
//! *global word* — is set. In the MSM, the BR of the communicator's master
//! node issues a `Compare-And-Write` query checking the flag on all member
//! nodes; when it holds everywhere the operation is scheduled. The CH then
//! performs broadcasts/barriers in the broadcast & barrier microphase, and
//! the RH performs reduces in the reduce microphase, gathering partials over
//! a binomial tree and computing them **on the NIC** with the softfloat
//! library (the Elan3 has no FPU).

use crate::engine::{BW, Blocked};
use bcs_core::{BcsCluster, CmpOp};
use mpi_api::call::MpiResp;
use mpi_api::comm::CommId;
use mpi_api::datatype::{Datatype, ReduceOp, combine_native};
use mpi_api::payload::Payload;
use mpi_api::runtime::JobLayout;
use qsnet::NodeId;
use qsnet::model::log2_ceil;
use simcore::{Sim, SimDuration};
use softfloat::{F32, F64};
use std::collections::BTreeMap;

/// Collective kind. `slot` indexes the per-rank round counters and the
/// per-node flag words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CollKind {
    Barrier,
    Bcast,
    Reduce { all: bool },
}

impl CollKind {
    pub fn slot(self) -> usize {
        match self {
            CollKind::Barrier => 0,
            CollKind::Bcast => 1,
            CollKind::Reduce { .. } => 2,
        }
    }
}

/// Global-word address of the flag for `(comm, slot)`. Word ids below 16
/// are reserved for the protocol (`crate::words`).
pub(crate) fn flag_word(comm: CommId, slot: usize) -> u32 {
    16 + comm.0 * 4 + slot as u32
}

#[derive(Clone)]
pub(crate) struct CollRound {
    pub kind: CollKind,
    pub comm: CommId,
    /// Communicator-rank of the root.
    pub root: usize,
    pub params: Option<(ReduceOp, Datatype)>,
    /// Reduce contributions / the bcast payload (by communicator rank).
    pub contribs: Vec<Option<Payload>>,
    pub arrived: usize,
    /// Arrivals per compute node.
    pub arrived_on_node: Vec<usize>,
    /// Scheduled for execution in this slice's BBM/RM.
    pub scheduled: bool,
    /// A Compare-And-Write query is in flight.
    pub query_inflight: bool,
}

/// Engine-wide collective bookkeeping.
#[derive(Clone)]
pub(crate) struct CollState {
    /// Per (rank, communicator) invocation counters, one per slot.
    counters: std::collections::HashMap<(usize, CommId), [u64; 3]>,
    /// Keyed by `(comm, slot, round)`.
    pub rounds: BTreeMap<(u32, usize, u64), CollRound>,
    compute_nodes: usize,
}

impl CollState {
    pub fn new(layout: &JobLayout) -> CollState {
        CollState {
            counters: Default::default(),
            rounds: BTreeMap::new(),
            compute_nodes: layout.compute_nodes,
        }
    }

    pub fn describe(&self) -> String {
        let mut out = String::new();
        for ((comm, slot, id), round) in &self.rounds {
            out.push_str(&format!(
                "  collective comm{comm} slot{slot}#{id} ({:?}): {} arrived, scheduled={}\n",
                round.kind, round.arrived, round.scheduled
            ));
        }
        out
    }
}

// ----------------------------------------------------------------------
// Posting (application side)
// ----------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
pub(crate) fn post_collective(
    w: &mut BW,
    sim: &mut Sim<BW>,
    rank: usize,
    comm: CommId,
    kind: CollKind,
    root: usize,
    data: Option<Payload>,
    params: Option<(ReduceOp, Datatype)>,
) {
    let _ = sim;
    let e = &mut w.engine;
    let slot = kind.slot();
    let c = e.coll.counters.entry((rank, comm)).or_insert([0; 3]);
    let id = c[slot];
    c[slot] += 1;
    let node = e.node_of(rank);
    let size = e.comms.size_of(comm);
    let local_rank = e.comms.comm_rank(comm, rank);
    let compute_nodes = e.coll.compute_nodes;
    let local_members = e.local_members(comm, node);

    let round = e
        .coll
        .rounds
        .entry((comm.0, slot, id))
        .or_insert_with(|| CollRound {
            kind,
            comm,
            root,
            params,
            contribs: vec![None; size],
            arrived: 0,
            arrived_on_node: vec![0; compute_nodes],
            scheduled: false,
            query_inflight: false,
        });
    assert_eq!(round.kind, kind, "mismatched collective kinds across ranks");
    assert_eq!(round.root, root, "mismatched collective roots across ranks");
    if params.is_some() {
        assert_eq!(round.params, params, "mismatched reduce parameters");
    }
    match kind {
        CollKind::Reduce { .. } => {
            round.contribs[local_rank] = Some(data.expect("reduce needs a contribution"));
        }
        CollKind::Bcast => {
            if local_rank == root {
                round.contribs[local_rank] = Some(data.expect("bcast root needs data"));
            }
        }
        CollKind::Barrier => {}
    }
    round.arrived += 1;
    round.arrived_on_node[node.0] += 1;
    let all_local_posted = round.arrived_on_node[node.0] == local_members;
    if all_local_posted {
        // BR pre-processing (§4.4): all local member ranks have invoked the
        // collective — set the per-(comm, kind) flag word the master's
        // Compare-And-Write will test during MSM.
        e.bcs.set_word(node, flag_word(comm, slot), (id + 1) as i64);
    }
    // Every BCS collective suspends its caller (§4.4: "...and blocks").
    e.blocked[rank] = Some(Blocked::Collective);
}

// ----------------------------------------------------------------------
// MSM: eligibility queries from the master node
// ----------------------------------------------------------------------

/// Issue `Compare-And-Write` queries for unscheduled rounds whose master
/// process lives on `node`. Returns the number of in-flight queries (they
/// count toward the node's MSM outstanding work).
pub(crate) fn msm_queries(w: &mut BW, sim: &mut Sim<BW>, node: NodeId) -> u32 {
    let mut queries = 0u32;
    // Lowest unscheduled round per (comm, slot): rounds of one communicator
    // and kind are globally ordered, so only the head can be eligible.
    let mut candidates: Vec<(u32, usize, u64, CommId)> = Vec::new();
    {
        let mut seen: Option<(u32, usize)> = None;
        for ((comm, slot, id), r) in &w.engine.coll.rounds {
            if seen == Some((*comm, *slot)) {
                continue;
            }
            seen = Some((*comm, *slot));
            if !r.scheduled {
                candidates.push((*comm, *slot, *id, r.comm));
            }
        }
    }
    for (comm_raw, slot, id, comm) in candidates {
        let root_world = {
            let round = w.engine.coll.rounds.get(&(comm_raw, slot, id)).unwrap();
            w.engine.comms.members(comm)[round.root]
        };
        let master_node = w.engine.node_of(root_world);
        {
            let round = w.engine.coll.rounds.get_mut(&(comm_raw, slot, id)).unwrap();
            if round.query_inflight || master_node != node {
                continue;
            }
            round.query_inflight = true;
        }
        queries += 1;
        let member_nodes = w.engine.member_nodes(comm);
        BcsCluster::compare_and_write(
            w,
            sim,
            node,
            &member_nodes,
            flag_word(comm, slot),
            CmpOp::Ge,
            (id + 1) as i64,
            None,
            move |w: &mut BW, sim: &mut Sim<BW>, ok| {
                if let Some(round) = w.engine.coll.rounds.get_mut(&(comm_raw, slot, id)) {
                    round.query_inflight = false;
                    if ok {
                        round.scheduled = true;
                    }
                }
                crate::protocol::work_item_done(w, sim, node);
                mpi_api::runtime::drain(w, sim);
            },
        );
    }
    queries
}

// ----------------------------------------------------------------------
// BBM: broadcast & barrier (CH)
// ----------------------------------------------------------------------

/// CH work for one node: perform every scheduled barrier/broadcast whose
/// master lives here. Other nodes have no BBM work.
pub(crate) fn node_begin_bbm(w: &mut BW, sim: &mut Sim<BW>, node: NodeId) {
    let todo: Vec<(u32, usize, u64)> = w
        .engine
        .coll
        .rounds
        .iter()
        .filter(|((_, slot, _), r)| {
            (*slot == 0 || *slot == 1) && r.scheduled && {
                let root_world = w.engine.comms.members(r.comm)[r.root];
                w.engine.node_of(root_world) == node
            }
        })
        .map(|(k, _)| *k)
        .collect();

    if todo.is_empty() {
        finish_phase_with_delay(w, sim, node);
        return;
    }
    w.engine.outstanding[node.0] = todo.len() as u32;
    for key in todo {
        let round = w.engine.coll.rounds.get(&key).unwrap();
        let kind = round.kind;
        let comm = round.comm;
        let payload: Payload = if kind == CollKind::Bcast {
            round.contribs[round.root].clone().expect("bcast payload")
        } else {
            Payload::empty()
        };
        match kind {
            CollKind::Barrier => w.engine.stats.barriers += 1,
            CollKind::Bcast => w.engine.stats.bcasts += 1,
            CollKind::Reduce { .. } => unreachable!(),
        }
        let bytes = payload.len() as u64 + w.engine.cfg.desc_bytes;
        let member_nodes = w.engine.member_nodes(comm);
        let members = std::rc::Rc::new(w.engine.comms.members(comm).to_vec());
        let layout = w.engine.layout.clone();
        let per_dest: std::rc::Rc<dyn Fn(&mut BW, &mut Sim<BW>, NodeId)> = {
            let payload = payload.clone();
            let members = std::rc::Rc::clone(&members);
            std::rc::Rc::new(move |w: &mut BW, sim: &mut Sim<BW>, d: NodeId| {
                // Delivery at node d completes the collective for its local
                // member ranks; they restart at the next slice boundary.
                let ranks: Vec<usize> = layout
                    .ranks_on(d)
                    .filter(|r| members.contains(r))
                    .collect();
                for rank in ranks {
                    let resp = match kind {
                        CollKind::Barrier => MpiResp::Ok,
                        CollKind::Bcast => MpiResp::Data(payload.clone()),
                        CollKind::Reduce { .. } => unreachable!(),
                    };
                    debug_assert!(matches!(
                        w.engine.blocked[rank],
                        Some(Blocked::Collective)
                    ));
                    w.engine.blocked[rank] = None;
                    w.engine.restart_queue.push((rank, resp));
                }
                mpi_api::runtime::drain(w, sim);
            })
        };
        let done_at = BcsCluster::xfer_and_signal(
            w,
            sim,
            node,
            &member_nodes,
            bytes,
            bcs_core::XsOpts {
                remote_event: None,
                local_event: None,
                on_deliver: Some(per_dest),
            },
        );
        // The round's work item ends when the multicast completes (last
        // delivery); deliveries were scheduled earlier at the same instants,
        // so they run first.
        sim.schedule_at(done_at, move |w: &mut BW, sim: &mut Sim<BW>| {
            let _ = w.engine.coll.rounds.remove(&key);
            crate::protocol::work_item_done(w, sim, node);
            mpi_api::runtime::drain(w, sim);
        });
    }
}

// ----------------------------------------------------------------------
// RM: reduce (RH)
// ----------------------------------------------------------------------

/// RH work for one node: every scheduled reduce whose master lives here.
pub(crate) fn node_begin_rm(w: &mut BW, sim: &mut Sim<BW>, node: NodeId) {
    let todo: Vec<(u32, usize, u64)> = w
        .engine
        .coll
        .rounds
        .iter()
        .filter(|((_, slot, _), r)| {
            *slot == 2 && r.scheduled && {
                let root_world = w.engine.comms.members(r.comm)[r.root];
                w.engine.node_of(root_world) == node
            }
        })
        .map(|(k, _)| *k)
        .collect();
    if todo.is_empty() {
        finish_phase_with_delay(w, sim, node);
        return;
    }
    w.engine.outstanding[node.0] = todo.len() as u32;

    for key in todo {
        let mut round = w.engine.coll.rounds.remove(&key).unwrap();
        w.engine.stats.reduces += 1;
        let (op, dtype) = round.params.expect("reduce without parameters");
        let CollKind::Reduce { all } = round.kind else {
            unreachable!()
        };
        let comm = round.comm;
        let members = w.engine.comms.members(comm).to_vec();
        let root_world = members[round.root];
        // RH gathers partials over a binomial tree and combines them with
        // the NIC's softfloat arithmetic (ascending communicator-rank order
        // for cross-engine bit-identity).
        let mut acc: Option<Vec<u8>> = None;
        for c in round.contribs.iter_mut() {
            let c = c.take().expect("missing reduce contribution");
            match &mut acc {
                None => acc = Some(c.into_vec()),
                Some(a) => combine_nic(op, dtype, a, &c),
            }
        }
        let value = Payload::from_vec(acc.unwrap_or_default());
        let bytes = value.len();

        // Tree timing: ceil(log2 member-nodes) stages of (latency + wire +
        // NIC softfloat arithmetic).
        let member_nodes = w.engine.member_nodes(comm);
        let e = &w.engine;
        let nn = member_nodes.len();
        let depth = if nn <= 1 { 0 } else { log2_ceil(nn) };
        let wire = bytes as u64 + e.cfg.desc_bytes;
        let levels = e.bcs.fabric.topology().levels();
        let stage = e.cfg.net.unicast_latency(2 * levels)
            + e.cfg.net.tx_time(wire)
            // detlint: allow(D06) — cost-model arithmetic, not reduce data:
            // one IEEE-754 multiply truncated to integer nanoseconds, which
            // is bit-identical on every host. Reduce *payload* arithmetic
            // goes through `softfloat` (see `softfloat::add_f32_bits`).
            + SimDuration::nanos((bytes as f64 * e.cfg.reduce_ns_per_byte) as u64)
            + e.cfg.desc_cost;
        let gather_done = sim.now() + stage * depth as u64;

        let layout = w.engine.layout.clone();
        if all && nn > 1 {
            // Allreduce: the RH broadcasts the result with Xfer-And-Signal.
            let members = std::rc::Rc::new(members);
            sim.schedule_at(gather_done, move |w: &mut BW, sim| {
                let member_nodes = w.engine.member_nodes(comm);
                let per_dest: std::rc::Rc<dyn Fn(&mut BW, &mut Sim<BW>, NodeId)> = {
                    let value = value.clone();
                    let members = std::rc::Rc::clone(&members);
                    let layout = layout.clone();
                    std::rc::Rc::new(move |w: &mut BW, sim: &mut Sim<BW>, d: NodeId| {
                        let ranks: Vec<usize> = layout
                            .ranks_on(d)
                            .filter(|r| members.contains(r))
                            .collect();
                        for rank in ranks {
                            w.engine.blocked[rank] = None;
                            w.engine
                                .restart_queue
                                .push((rank, MpiResp::Data(value.clone())));
                        }
                        mpi_api::runtime::drain(w, sim);
                    })
                };
                let bytes = value.len() as u64 + w.engine.cfg.desc_bytes;
                let done_at = BcsCluster::xfer_and_signal(
                    w,
                    sim,
                    node,
                    &member_nodes,
                    bytes,
                    bcs_core::XsOpts {
                        remote_event: None,
                        local_event: None,
                        on_deliver: Some(per_dest),
                    },
                );
                sim.schedule_at(done_at, move |w: &mut BW, sim: &mut Sim<BW>| {
                    crate::protocol::work_item_done(w, sim, node);
                    mpi_api::runtime::drain(w, sim);
                });
            });
        } else {
            sim.schedule_at(gather_done, move |w: &mut BW, sim| {
                for &rank in &members {
                    w.engine.blocked[rank] = None;
                    let resp = if all {
                        MpiResp::Data(value.clone())
                    } else if rank == root_world {
                        MpiResp::RootData(Some(value.clone()))
                    } else {
                        MpiResp::RootData(None)
                    };
                    w.engine.restart_queue.push((rank, resp));
                }
                crate::protocol::work_item_done(w, sim, node);
                mpi_api::runtime::drain(w, sim);
            });
        }
    }
}

fn finish_phase_with_delay(w: &mut BW, sim: &mut Sim<BW>, node: NodeId) {
    w.engine.outstanding[node.0] = 1;
    let cost = w.engine.cfg.desc_cost;
    sim.schedule_in(cost, move |w: &mut BW, sim| {
        crate::protocol::work_item_done(w, sim, node);
        mpi_api::runtime::drain(w, sim);
    });
}

/// NIC-side combine: floating point through the softfloat library (the NIC
/// has no FPU — §4.4), integers natively. Bit-identical to the host
/// arithmetic of the baseline, which the cross-engine tests assert.
pub(crate) fn combine_nic(op: ReduceOp, dtype: Datatype, a: &mut [u8], b: &[u8]) {
    assert_eq!(a.len(), b.len());
    match dtype {
        Datatype::F64 => {
            for (ca, cb) in a.chunks_exact_mut(8).zip(b.chunks_exact(8)) {
                let x = F64::from_bits(u64::from_le_bytes(ca.try_into().unwrap()));
                let y = F64::from_bits(u64::from_le_bytes(cb.try_into().unwrap()));
                let r = match op {
                    ReduceOp::Sum => x.add(y),
                    ReduceOp::Prod => x.mul(y),
                    ReduceOp::Min => x.min(y),
                    ReduceOp::Max => x.max(y),
                    ReduceOp::BAnd | ReduceOp::BOr => {
                        panic!("bitwise reduction on floating-point data")
                    }
                };
                ca.copy_from_slice(&r.to_bits().to_le_bytes());
            }
        }
        Datatype::F32 => {
            for (ca, cb) in a.chunks_exact_mut(4).zip(b.chunks_exact(4)) {
                let x = F32::from_bits(u32::from_le_bytes(ca.try_into().unwrap()));
                let y = F32::from_bits(u32::from_le_bytes(cb.try_into().unwrap()));
                let r = match op {
                    ReduceOp::Sum => x.add(y),
                    ReduceOp::Prod => x.mul(y),
                    ReduceOp::Min => x.min(y),
                    ReduceOp::Max => x.max(y),
                    ReduceOp::BAnd | ReduceOp::BOr => {
                        panic!("bitwise reduction on floating-point data")
                    }
                };
                ca.copy_from_slice(&r.to_bits().to_le_bytes());
            }
        }
        _ => combine_native(op, dtype, a, b),
    }
}
