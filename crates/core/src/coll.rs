//! Collectives: barrier, broadcast (CH), reduce/allreduce (RH) and
//! allgatherv, per §4.4 — extended with communicator (MPI group) support,
//! the functionality §4.5 lists as the prototype's main limitation.
//!
//! Every collective call posts a descriptor to the BR and blocks. The BR
//! pre-processes descriptors: once all local ranks *of the communicator*
//! have invoked the collective, a per-(communicator, kind) flag — a BCS
//! *global word* — is set. In the MSM, the BR of the communicator's master
//! node issues a `Compare-And-Write` query checking the flag on all member
//! nodes; when it holds everywhere the operation is scheduled. The CH then
//! performs broadcasts/barriers in the broadcast & barrier microphase, and
//! the RH performs reduces (and allgathers) in the reduce microphase,
//! computing reductions **on the NIC** with the softfloat library (the
//! Elan3 has no FPU).
//!
//! # Wire schedules ([`CollAlgo`], DESIGN §14)
//!
//! The *value plane* is fixed: contributions combine in ascending
//! communicator-rank order ([`combine_nic`]), so results are bit-identical
//! under every algorithm and both engines. The *time plane* — what the
//! modeled wire carries — is selected by [`BcsConfig::coll_algo`]:
//!
//! * [`CollAlgo::HwMulticast`]: the fabric's native multicast primitive and
//!   an analytic ⌈log2 n⌉-stage binomial gather (the paper's path).
//! * [`CollAlgo::Binomial`]: an explicit binomial tree of point-to-point
//!   DMAs; each node forwards to its subtree the moment the payload lands,
//!   and reductions run the mirrored tree bottom-up with a per-merge
//!   softfloat delay.
//! * [`CollAlgo::OptimalSchedule`]: precomputed round-synchronized block
//!   schedules ([`mpi_api::coll_sched::bcast_schedule`]), cached per
//!   (communicator, block count) in [`CollState`]; reductions replay the
//!   table in reverse with every edge flipped.

use crate::engine::{BW, BcsConfig, Blocked};
use bcs_core::{BcsCluster, CmpOp};
use mpi_api::call::MpiResp;
use mpi_api::coll_sched::{self, CollAlgo, RoundSchedule};
use mpi_api::comm::CommId;
use mpi_api::datatype::{Datatype, ReduceOp, combine_native};
use mpi_api::payload::Payload;
use mpi_api::runtime::JobLayout;
use qsnet::NodeId;
use qsnet::model::log2_ceil;
use simcore::{Sim, SimDuration, SimTime};
use softfloat::{F32, F64};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Collective kind. `slot` indexes the per-rank round counters and the
/// per-node flag words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CollKind {
    Barrier,
    Bcast,
    Reduce { all: bool },
    Allgather,
}

/// Word slots reserved per communicator (one per collective kind family).
const SLOTS_PER_COMM: u32 = 4;

/// Synthetic round ids (composite-allreduce broadcast legs) live above
/// every id the per-rank counters can reach, so they sort after all real
/// rounds of the slot and never collide with them.
const SYNTH_ID: u64 = 1 << 63;

impl CollKind {
    pub fn slot(self) -> usize {
        match self {
            CollKind::Barrier => 0,
            CollKind::Bcast => 1,
            CollKind::Reduce { .. } => 2,
            CollKind::Allgather => 3,
        }
    }
}

/// Global-word address of the flag for `(comm, slot)`. Word ids below
/// [`crate::words::RESERVED`] belong to the protocol (`crate::words`); each
/// communicator owns a disjoint [`SLOTS_PER_COMM`]-word window above them.
// PANIC-OK: slot range is asserted against the reserved flag-word layout —
// violations are caught loudly at the call site (unit-tested below).
pub(crate) fn flag_word(comm: CommId, slot: usize) -> u32 {
    debug_assert!((slot as u32) < SLOTS_PER_COMM, "collective slot out of range");
    let word = comm
        .0
        .checked_mul(SLOTS_PER_COMM)
        .and_then(|base| base.checked_add(crate::words::RESERVED))
        .and_then(|base| base.checked_add(slot as u32))
        .expect("communicator id overflows the global-word space");
    debug_assert!(word >= crate::words::RESERVED, "flag word in the reserved range");
    word
}

#[derive(Clone)]
pub(crate) struct CollRound {
    pub kind: CollKind,
    pub comm: CommId,
    /// Communicator-rank of the root.
    pub root: usize,
    pub params: Option<(ReduceOp, Datatype)>,
    /// Reduce/allgather contributions / the bcast payload (by communicator
    /// rank).
    pub contribs: Vec<Option<Payload>>,
    pub arrived: usize,
    /// Arrivals per compute node.
    pub arrived_on_node: Vec<usize>,
    /// Scheduled for execution in this slice's BBM/RM.
    pub scheduled: bool,
    /// A Compare-And-Write query is in flight.
    pub query_inflight: bool,
}

/// Engine-wide collective bookkeeping.
#[derive(Clone)]
pub(crate) struct CollState {
    /// Per (rank, communicator) invocation counters, one per slot. A
    /// `BTreeMap` so describe/checkpoint walks are deterministic by
    /// construction (no D02 waiver needed).
    counters: BTreeMap<(usize, CommId), [u64; SLOTS_PER_COMM as usize]>,
    /// Keyed by `(comm, slot, round)`.
    pub rounds: BTreeMap<(u32, usize, u64), CollRound>,
    compute_nodes: usize,
    /// Round-schedule tables keyed by `(comm, block count)` — pure
    /// functions of the communicator's node count and the block count, so
    /// a restored checkpoint rebuilds identical tables on demand.
    sched_cache: BTreeMap<(u32, usize), Rc<RoundSchedule>>,
}

impl CollState {
    pub fn new(layout: &JobLayout) -> CollState {
        CollState {
            counters: BTreeMap::new(),
            rounds: BTreeMap::new(),
            compute_nodes: layout.compute_nodes,
            sched_cache: BTreeMap::new(),
        }
    }

    pub fn describe(&self) -> String {
        let mut out = String::new();
        for ((comm, slot, id), round) in &self.rounds {
            out.push_str(&format!(
                "  collective comm{comm} slot{slot}#{id} ({:?}): {} arrived, scheduled={}\n",
                round.kind, round.arrived, round.scheduled
            ));
        }
        out
    }
}

/// The cached broadcast schedule for `comm` (`nodes` member nodes) and
/// `blocks` pipeline blocks. Reductions walk the same table in reverse.
fn sched_for(w: &mut BW, comm: CommId, nodes: usize, blocks: usize) -> Rc<RoundSchedule> {
    let entry = w
        .engine
        .coll
        .sched_cache
        .entry((comm.0, blocks))
        .or_insert_with(|| Rc::new(coll_sched::bcast_schedule(nodes, blocks)));
    debug_assert_eq!(entry.nodes, nodes, "communicator changed size");
    Rc::clone(entry)
}

// ----------------------------------------------------------------------
// Posting (application side)
// ----------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
// PANIC-OK: per-comm/per-rank tables are sized when the communicator is
// created; the posting rank was validated by the API layer.
pub(crate) fn post_collective(
    w: &mut BW,
    sim: &mut Sim<BW>,
    rank: usize,
    comm: CommId,
    kind: CollKind,
    root: usize,
    data: Option<Payload>,
    params: Option<(ReduceOp, Datatype)>,
) {
    let _ = sim;
    let e = &mut w.engine;
    let slot = kind.slot();
    let c = e.coll.counters.entry((rank, comm)).or_insert([0; 4]);
    let id = c[slot];
    c[slot] += 1;
    let node = e.node_of(rank);
    let size = e.comms.size_of(comm);
    let local_rank = e.comms.comm_rank(comm, rank);
    let compute_nodes = e.coll.compute_nodes;
    let local_members = e.local_members(comm, node);

    let round = e
        .coll
        .rounds
        .entry((comm.0, slot, id))
        .or_insert_with(|| CollRound {
            kind,
            comm,
            root,
            params,
            contribs: vec![None; size],
            arrived: 0,
            arrived_on_node: vec![0; compute_nodes],
            scheduled: false,
            query_inflight: false,
        });
    assert_eq!(round.kind, kind, "mismatched collective kinds across ranks");
    assert_eq!(round.root, root, "mismatched collective roots across ranks");
    if params.is_some() {
        assert_eq!(round.params, params, "mismatched reduce parameters");
    }
    match kind {
        CollKind::Reduce { .. } => {
            round.contribs[local_rank] = Some(data.expect("reduce needs a contribution"));
        }
        CollKind::Allgather => {
            round.contribs[local_rank] = Some(data.expect("allgather needs a contribution"));
        }
        CollKind::Bcast => {
            if local_rank == root {
                round.contribs[local_rank] = Some(data.expect("bcast root needs data"));
            }
        }
        CollKind::Barrier => {}
    }
    round.arrived += 1;
    round.arrived_on_node[node.0] += 1;
    let all_local_posted = round.arrived_on_node[node.0] == local_members;
    if all_local_posted {
        // BR pre-processing (§4.4): all local member ranks have invoked the
        // collective — set the per-(comm, kind) flag word the master's
        // Compare-And-Write will test during MSM.
        e.bcs.set_word(node, flag_word(comm, slot), (id + 1) as i64);
    }
    // Every BCS collective suspends its caller (§4.4: "...and blocks").
    e.blocked[rank] = Some(Blocked::Collective);
}

// ----------------------------------------------------------------------
// MSM: eligibility queries from the master node
// ----------------------------------------------------------------------

/// Issue `Compare-And-Write` queries for unscheduled rounds whose master
/// process lives on `node`. Returns the number of in-flight queries (they
/// count toward the node's MSM outstanding work).
// PANIC-OK: collective rounds queried here were installed by post_collective
// on this node; per-node tables are sized by the fixed topology.
pub(crate) fn msm_queries(w: &mut BW, sim: &mut Sim<BW>, node: NodeId) -> u32 {
    let mut queries = 0u32;
    // Lowest unscheduled round per (comm, slot): rounds of one communicator
    // and kind are globally ordered, so only the head can be eligible.
    let mut candidates: Vec<(u32, usize, u64, CommId)> = Vec::new();
    {
        let mut seen: Option<(u32, usize)> = None;
        for ((comm, slot, id), r) in &w.engine.coll.rounds {
            if seen == Some((*comm, *slot)) {
                continue;
            }
            seen = Some((*comm, *slot));
            if !r.scheduled {
                candidates.push((*comm, *slot, *id, r.comm));
            }
        }
    }
    for (comm_raw, slot, id, comm) in candidates {
        let root_world = {
            let round = w.engine.coll.rounds.get(&(comm_raw, slot, id)).unwrap();
            w.engine.comms.members(comm)[round.root]
        };
        let master_node = w.engine.node_of(root_world);
        {
            let round = w.engine.coll.rounds.get_mut(&(comm_raw, slot, id)).unwrap();
            if round.query_inflight || master_node != node {
                continue;
            }
            round.query_inflight = true;
        }
        queries += 1;
        let member_nodes = w.engine.member_nodes(comm);
        BcsCluster::compare_and_write(
            w,
            sim,
            node,
            &member_nodes,
            flag_word(comm, slot),
            CmpOp::Ge,
            (id + 1) as i64,
            None,
            move |w: &mut BW, sim: &mut Sim<BW>, ok| {
                if let Some(round) = w.engine.coll.rounds.get_mut(&(comm_raw, slot, id)) {
                    round.query_inflight = false;
                    if ok {
                        round.scheduled = true;
                    }
                }
                crate::protocol::work_item_done(w, sim, node);
                mpi_api::runtime::drain(w, sim);
            },
        );
    }
    queries
}

// ----------------------------------------------------------------------
// Schedule-based wire executors (CollAlgo::Binomial / ::OptimalSchedule)
// ----------------------------------------------------------------------

/// Member nodes with the master (the BBM/RM issuing node) rotated to the
/// front — position 0 of every schedule. The remainder stays in ascending
/// node order.
// PANIC-OK: `order` always contains `master` — it is built from the same
// member list the master was chosen from.
fn master_first(mut order: Vec<NodeId>, master: NodeId) -> Vec<NodeId> {
    let p = order
        .iter()
        .position(|&n| n == master)
        .expect("master node is not a member node");
    order.remove(p);
    order.insert(0, master);
    order
}

/// Per-node completion hook of a broadcast leg.
type NodeFn = Rc<dyn Fn(&mut BW, &mut Sim<BW>, NodeId)>;
/// Whole-collective completion hook (taken exactly once).
type DoneFn = Rc<RefCell<Option<Box<dyn FnOnce(&mut BW, &mut Sim<BW>)>>>>;

fn take_done(w: &mut BW, sim: &mut Sim<BW>, done: &DoneFn) {
    if let Some(f) = done.borrow_mut().take() {
        f(w, sim);
    }
}

/// Binomial broadcast: `order[0]` holds `bytes`; every node forwards to its
/// subtree children (largest subtree first) the instant the payload lands.
/// `on_node` fires per node at its arrival instant; `on_done` once, at the
/// last arrival.
fn binomial_bcast(
    w: &mut BW,
    sim: &mut Sim<BW>,
    order: Rc<Vec<NodeId>>,
    bytes: u64,
    on_node: NodeFn,
    on_done: DoneFn,
) {
    let remaining = Rc::new(Cell::new(order.len()));
    binomial_arrived(w, sim, order, bytes, remaining, 0, on_node, on_done);
}

#[allow(clippy::too_many_arguments)]
// PANIC-OK: binomial-tree arrivals reference the round state created when
// the collective was posted; parent/child indices are derived from the
// comm size the tree was built for.
fn binomial_arrived(
    w: &mut BW,
    sim: &mut Sim<BW>,
    order: Rc<Vec<NodeId>>,
    bytes: u64,
    remaining: Rc<Cell<usize>>,
    idx: usize,
    on_node: NodeFn,
    on_done: DoneFn,
) {
    on_node(w, sim, order[idx]);
    let children = coll_sched::binomial_children(idx, order.len());
    for &c in children.iter().rev() {
        let (order2, rem2, on_node2, on_done2) = (
            Rc::clone(&order),
            Rc::clone(&remaining),
            Rc::clone(&on_node),
            Rc::clone(&on_done),
        );
        let deliver: NodeFn = Rc::new(move |w: &mut BW, sim: &mut Sim<BW>, _d: NodeId| {
            binomial_arrived(
                w,
                sim,
                Rc::clone(&order2),
                bytes,
                Rc::clone(&rem2),
                c,
                Rc::clone(&on_node2),
                Rc::clone(&on_done2),
            );
        });
        BcsCluster::xfer_and_signal(
            w,
            sim,
            order[idx],
            &[order[c]],
            bytes,
            bcs_core::XsOpts {
                remote_event: None,
                local_event: None,
                on_deliver: Some(deliver),
            },
        );
    }
    remaining.set(remaining.get() - 1);
    if remaining.get() == 0 {
        take_done(w, sim, &on_done);
    }
}

/// Shared state of a binomial reduction (gather) leg.
struct GatherRun {
    order: Vec<NodeId>,
    bytes: u64,
    /// NIC combine cost charged per received partial (zero for allgather).
    combine: SimDuration,
    /// Children still outstanding per tree position.
    pending: RefCell<Vec<usize>>,
    on_done: RefCell<Option<Box<dyn FnOnce(&mut BW, &mut Sim<BW>)>>>,
}

/// Binomial gather: the mirrored broadcast tree walked leaf-to-root. Every
/// position sends its (combined) partial to its parent once all children
/// have arrived; `on_done` fires when the root has merged everything.
// PANIC-OK: gather contributions are indexed by tree positions computed
// from the same comm the buffers were sized for.
fn binomial_gather(
    w: &mut BW,
    sim: &mut Sim<BW>,
    order: Vec<NodeId>,
    bytes: u64,
    combine: SimDuration,
    on_done: Box<dyn FnOnce(&mut BW, &mut Sim<BW>)>,
) {
    let nn = order.len();
    let pending: Vec<usize> = (0..nn)
        .map(|i| coll_sched::binomial_children(i, nn).len())
        .collect();
    let run = Rc::new(GatherRun {
        order,
        bytes,
        combine,
        pending: RefCell::new(pending),
        on_done: RefCell::new(Some(on_done)),
    });
    if nn <= 1 {
        if let Some(f) = run.on_done.borrow_mut().take() {
            f(w, sim);
        }
        return;
    }
    for i in 1..nn {
        if run.pending.borrow()[i] == 0 {
            gather_send_up(w, sim, Rc::clone(&run), i);
        }
    }
}

// PANIC-OK: the gather run holds per-child slots allocated at post time;

// `idx` enumerates that same slot vector.

fn gather_send_up(w: &mut BW, sim: &mut Sim<BW>, run: Rc<GatherRun>, idx: usize) {
    let parent = coll_sched::binomial_parent(idx);
    let run2 = Rc::clone(&run);
    let deliver: NodeFn = Rc::new(move |_w: &mut BW, sim: &mut Sim<BW>, _d: NodeId| {
        let run3 = Rc::clone(&run2);
        sim.schedule_in(run2.combine, move |w: &mut BW, sim: &mut Sim<BW>| {
            let left = {
                let mut p = run3.pending.borrow_mut();
                p[parent] -= 1;
                p[parent]
            };
            if left == 0 {
                if parent == 0 {
                    if let Some(f) = run3.on_done.borrow_mut().take() {
                        f(w, sim);
                    }
                } else {
                    gather_send_up(w, sim, Rc::clone(&run3), parent);
                }
            }
        });
    });
    BcsCluster::xfer_and_signal(
        w,
        sim,
        run.order[idx],
        &[run.order[parent]],
        run.bytes,
        bcs_core::XsOpts {
            remote_event: None,
            local_event: None,
            on_deliver: Some(deliver),
        },
    );
}

/// Shared state of a pipelined round-schedule run.
struct SchedRun {
    order: Vec<NodeId>,
    sched: Rc<RoundSchedule>,
    /// Payload bytes being moved (split into `sched.blocks` shares).
    bytes: u64,
    desc: u64,
    /// Charge the NIC combine cost per received block (reduction legs).
    combine: bool,
    /// Walk the table last-to-first with flipped edges (the reduction).
    gather: bool,
    /// Blocks received so far per position (broadcast legs).
    got: RefCell<Vec<usize>>,
    on_node: Option<NodeFn>,
    on_done: RefCell<Option<Box<dyn FnOnce(&mut BW, &mut Sim<BW>)>>>,
}

/// Execute one round of the table: all of the round's one-port transfers
/// start together, and the next round starts when the slowest completes.
// PANIC-OK: compiled schedules are validated at compile time (rounds are
// in-range, peers exist); the run state lives until the last round.
fn sched_run_round(w: &mut BW, sim: &mut Sim<BW>, run: Rc<SchedRun>, r: usize) {
    let total = run.sched.rounds.len();
    if r == total {
        if let Some(f) = run.on_done.borrow_mut().take() {
            f(w, sim);
        }
        return;
    }
    let fwd = &run.sched.rounds[if run.gather { total - 1 - r } else { r }];
    let edges: Vec<(usize, usize, usize)> = if run.gather {
        fwd.iter().map(|&(s, d, b)| (d, s, b)).collect()
    } else {
        fwd.clone()
    };
    let remaining = Rc::new(Cell::new(edges.len()));
    for (s, d, b) in edges {
        let share = coll_sched::block_len(run.bytes, run.sched.blocks, b);
        let t = BcsCluster::xfer_and_signal(
            w,
            sim,
            run.order[s],
            &[run.order[d]],
            share + run.desc,
            bcs_core::XsOpts {
                remote_event: None,
                local_event: None,
                on_deliver: None,
            },
        );
        let extra = if run.combine {
            reduce_delay(&w.engine.cfg, share as usize)
        } else {
            SimDuration::ZERO
        };
        let (run2, rem) = (Rc::clone(&run), Rc::clone(&remaining));
        sim.schedule_at(t + extra, move |w: &mut BW, sim: &mut Sim<BW>| {
            if !run2.gather {
                let complete = {
                    let mut g = run2.got.borrow_mut();
                    g[d] += 1;
                    g[d] == run2.sched.blocks
                };
                if complete {
                    if let Some(cb) = &run2.on_node {
                        cb(w, sim, run2.order[d]);
                    }
                }
            }
            rem.set(rem.get() - 1);
            if rem.get() == 0 {
                sched_run_round(w, sim, Rc::clone(&run2), r + 1);
            }
        });
    }
}

/// Pipelined broadcast leg: `on_node` fires for the root immediately and
/// for every other node when its last block lands; `on_done` after the
/// final round.
#[allow(clippy::too_many_arguments)]
// PANIC-OK: schedule rounds address peers inside the comm the schedule was
// compiled for; payload slots were allocated at post time.
fn sched_bcast(
    w: &mut BW,
    sim: &mut Sim<BW>,
    comm: CommId,
    order: Vec<NodeId>,
    bytes: u64,
    on_node: NodeFn,
    on_done: Box<dyn FnOnce(&mut BW, &mut Sim<BW>)>,
) {
    let blocks = coll_sched::block_count(bytes);
    let sched = sched_for(w, comm, order.len(), blocks);
    let desc = w.engine.cfg.desc_bytes;
    let root = order[0];
    on_node(w, sim, root);
    let nn = order.len();
    let run = Rc::new(SchedRun {
        order,
        sched,
        bytes,
        desc,
        combine: false,
        gather: false,
        got: RefCell::new(vec![0; nn]),
        on_node: Some(on_node),
        on_done: RefCell::new(Some(on_done)),
    });
    sched_run_round(w, sim, run, 0);
}

/// Pipelined reduction (gather) leg: the broadcast table in reverse, each
/// delivered block paying the NIC combine cost when `combine` is set.
#[allow(clippy::too_many_arguments)]
fn sched_gather(
    w: &mut BW,
    sim: &mut Sim<BW>,
    comm: CommId,
    order: Vec<NodeId>,
    bytes: u64,
    combine: bool,
    on_done: Box<dyn FnOnce(&mut BW, &mut Sim<BW>)>,
) {
    let blocks = coll_sched::block_count(bytes);
    let sched = sched_for(w, comm, order.len(), blocks);
    let desc = w.engine.cfg.desc_bytes;
    let nn = order.len();
    let run = Rc::new(SchedRun {
        order,
        sched,
        bytes,
        desc,
        combine,
        gather: true,
        got: RefCell::new(vec![0; nn]),
        on_node: None,
        on_done: RefCell::new(Some(on_done)),
    });
    sched_run_round(w, sim, run, 0);
}

// ----------------------------------------------------------------------
// BBM: broadcast & barrier (CH)
// ----------------------------------------------------------------------

/// CH work for one node: perform every scheduled barrier/broadcast whose
/// master lives here. Other nodes have no BBM work.
// PANIC-OK: BBM walks collective rounds installed on this node by
// post_collective; queue entries it unwraps were inserted by that path.
pub(crate) fn node_begin_bbm(w: &mut BW, sim: &mut Sim<BW>, node: NodeId) {
    let todo: Vec<(u32, usize, u64)> = w
        .engine
        .coll
        .rounds
        .iter()
        .filter(|((_, slot, _), r)| {
            (*slot == 0 || *slot == 1) && r.scheduled && {
                let root_world = w.engine.comms.members(r.comm)[r.root];
                w.engine.node_of(root_world) == node
            }
        })
        .map(|(k, _)| *k)
        .collect();

    if todo.is_empty() {
        finish_phase_with_delay(w, sim, node);
        return;
    }
    w.engine.outstanding[node.0] = todo.len() as u32;
    let algo = w.engine.cfg.coll_algo;
    for key in todo {
        let round = w.engine.coll.rounds.get(&key).unwrap();
        let kind = round.kind;
        let comm = round.comm;
        let payload: Payload = if kind == CollKind::Bcast {
            round.contribs[round.root].clone().expect("bcast payload")
        } else {
            Payload::empty()
        };
        match kind {
            CollKind::Barrier => w.engine.stats.barriers += 1,
            CollKind::Bcast => w.engine.stats.bcasts += 1,
            _ => unreachable!(),
        }
        let bytes = payload.len() as u64 + w.engine.cfg.desc_bytes;
        let member_nodes = w.engine.member_nodes(comm);
        let members = std::rc::Rc::new(w.engine.comms.members(comm).to_vec());
        let layout = w.engine.layout.clone();
        let per_dest: std::rc::Rc<dyn Fn(&mut BW, &mut Sim<BW>, NodeId)> = {
            let payload = payload.clone();
            let members = std::rc::Rc::clone(&members);
            std::rc::Rc::new(move |w: &mut BW, sim: &mut Sim<BW>, d: NodeId| {
                // Delivery at node d completes the collective for its local
                // member ranks; they restart at the next slice boundary.
                let ranks: Vec<usize> = layout
                    .ranks_on(d)
                    .filter(|r| members.contains(r))
                    .collect();
                for rank in ranks {
                    let resp = match kind {
                        CollKind::Barrier => MpiResp::Ok,
                        CollKind::Bcast => MpiResp::Data(payload.clone()),
                        _ => unreachable!(),
                    };
                    debug_assert!(matches!(
                        w.engine.blocked[rank],
                        Some(Blocked::Collective)
                    ));
                    w.engine.blocked[rank] = None;
                    w.engine.restart_queue.push((rank, resp));
                }
                mpi_api::runtime::drain(w, sim);
            })
        };
        if algo == CollAlgo::HwMulticast {
            let done_at = BcsCluster::xfer_and_signal(
                w,
                sim,
                node,
                &member_nodes,
                bytes,
                bcs_core::XsOpts {
                    remote_event: None,
                    local_event: None,
                    on_deliver: Some(per_dest),
                },
            );
            // The round's work item ends when the multicast completes (last
            // delivery); deliveries were scheduled earlier at the same
            // instants, so they run first.
            sim.schedule_at(done_at, move |w: &mut BW, sim: &mut Sim<BW>| {
                let _ = w.engine.coll.rounds.remove(&key);
                crate::protocol::work_item_done(w, sim, node);
                mpi_api::runtime::drain(w, sim);
            });
        } else {
            let order = master_first(member_nodes, node);
            let on_done: Box<dyn FnOnce(&mut BW, &mut Sim<BW>)> =
                Box::new(move |w: &mut BW, sim: &mut Sim<BW>| {
                    let _ = w.engine.coll.rounds.remove(&key);
                    crate::protocol::work_item_done(w, sim, node);
                    mpi_api::runtime::drain(w, sim);
                });
            match algo {
                CollAlgo::Binomial => binomial_bcast(
                    w,
                    sim,
                    Rc::new(order),
                    bytes,
                    per_dest,
                    Rc::new(RefCell::new(Some(on_done))),
                ),
                CollAlgo::OptimalSchedule => {
                    sched_bcast(w, sim, comm, order, payload.len() as u64, per_dest, on_done)
                }
                CollAlgo::HwMulticast => unreachable!(),
            }
        }
    }
}

// ----------------------------------------------------------------------
// RM: reduce & allgather (RH)
// ----------------------------------------------------------------------

/// RH work for one node: every scheduled reduce/allgather whose master
/// lives here.
// PANIC-OK: reduce/multicast rounds are installed before the strobe
// schedules this phase; per-node tables are sized by the topology.
pub(crate) fn node_begin_rm(w: &mut BW, sim: &mut Sim<BW>, node: NodeId) {
    let todo: Vec<(u32, usize, u64)> = w
        .engine
        .coll
        .rounds
        .iter()
        .filter(|((_, slot, _), r)| {
            (*slot == 2 || *slot == 3) && r.scheduled && {
                let root_world = w.engine.comms.members(r.comm)[r.root];
                w.engine.node_of(root_world) == node
            }
        })
        .map(|(k, _)| *k)
        .collect();
    if todo.is_empty() {
        finish_phase_with_delay(w, sim, node);
        return;
    }
    w.engine.outstanding[node.0] = todo.len() as u32;

    for key in todo {
        let round = w.engine.coll.rounds.remove(&key).unwrap();
        match round.kind {
            CollKind::Reduce { all } => rm_reduce(w, sim, node, key, round, all),
            CollKind::Allgather => rm_allgather(w, sim, node, round),
            _ => unreachable!(),
        }
    }
}

// PANIC-OK: reduction buffers were allocated at post time for exactly the

// contributing members walked here; byte lanes are sized by the dtype.

fn rm_reduce(
    w: &mut BW,
    sim: &mut Sim<BW>,
    node: NodeId,
    key: (u32, usize, u64),
    mut round: CollRound,
    all: bool,
) {
    w.engine.stats.reduces += 1;
    let (op, dtype) = round.params.expect("reduce without parameters");
    let comm = round.comm;
    let members = w.engine.comms.members(comm).to_vec();
    let root_world = members[round.root];
    // RH combines partials with the NIC's softfloat arithmetic, in
    // ascending communicator-rank order for cross-engine (and
    // cross-algorithm) bit-identity. The wire schedule below only
    // determines *when* the result is ready.
    let mut acc: Option<Vec<u8>> = None;
    for c in round.contribs.iter_mut() {
        let c = c.take().expect("missing reduce contribution");
        match &mut acc {
            None => acc = Some(c.into_vec()),
            Some(a) => combine_nic(op, dtype, a, &c),
        }
    }
    let value = Payload::from_vec(acc.unwrap_or_default());
    let bytes = value.len();

    let member_nodes = w.engine.member_nodes(comm);
    let nn = member_nodes.len();
    let algo = w.engine.cfg.coll_algo;
    let composite = w.engine.cfg.allreduce_composite && all && nn > 1;
    let layout = w.engine.layout.clone();

    // What happens once the gather leg completes at the root.
    let finish: Box<dyn FnOnce(&mut BW, &mut Sim<BW>)> = if composite {
        // Reduce + bcast composition: hand the result to a synthetic,
        // already-scheduled broadcast round the *next* slice's BBM runs
        // under the same algorithm. Members stay blocked until then.
        let value = value.clone();
        let root = round.root;
        let size = members.len();
        let compute_nodes = w.engine.coll.compute_nodes;
        Box::new(move |w: &mut BW, sim: &mut Sim<BW>| {
            let mut contribs = vec![None; size];
            contribs[root] = Some(value);
            let synth = (comm.0, CollKind::Bcast.slot(), SYNTH_ID | key.2);
            let prev = w.engine.coll.rounds.insert(
                synth,
                CollRound {
                    kind: CollKind::Bcast,
                    comm,
                    root,
                    params: None,
                    contribs,
                    arrived: size,
                    arrived_on_node: vec![0; compute_nodes],
                    scheduled: true,
                    query_inflight: false,
                },
            );
            debug_assert!(prev.is_none(), "synthetic bcast round id collision");
            crate::protocol::work_item_done(w, sim, node);
            mpi_api::runtime::drain(w, sim);
        })
    } else if all && nn > 1 {
        // Allreduce: the RH broadcasts the result within the reduce
        // microphase, under the active algorithm.
        let members = Rc::new(members);
        let value2 = value.clone();
        Box::new(move |w: &mut BW, sim: &mut Sim<BW>| {
            let member_nodes = w.engine.member_nodes(comm);
            let per_dest: NodeFn = {
                let value = value2.clone();
                let members = Rc::clone(&members);
                let layout = layout.clone();
                Rc::new(move |w: &mut BW, sim: &mut Sim<BW>, d: NodeId| {
                    let ranks: Vec<usize> = layout
                        .ranks_on(d)
                        .filter(|r| members.contains(r))
                        .collect();
                    for rank in ranks {
                        w.engine.blocked[rank] = None;
                        w.engine
                            .restart_queue
                            .push((rank, MpiResp::Data(value.clone())));
                    }
                    mpi_api::runtime::drain(w, sim);
                })
            };
            let bytes = value2.len() as u64 + w.engine.cfg.desc_bytes;
            let item_done: Box<dyn FnOnce(&mut BW, &mut Sim<BW>)> =
                Box::new(move |w: &mut BW, sim: &mut Sim<BW>| {
                    crate::protocol::work_item_done(w, sim, node);
                    mpi_api::runtime::drain(w, sim);
                });
            match w.engine.cfg.coll_algo {
                CollAlgo::HwMulticast => {
                    let done_at = BcsCluster::xfer_and_signal(
                        w,
                        sim,
                        node,
                        &member_nodes,
                        bytes,
                        bcs_core::XsOpts {
                            remote_event: None,
                            local_event: None,
                            on_deliver: Some(per_dest),
                        },
                    );
                    sim.schedule_at(done_at, move |w: &mut BW, sim: &mut Sim<BW>| {
                        item_done(w, sim);
                    });
                }
                CollAlgo::Binomial => binomial_bcast(
                    w,
                    sim,
                    Rc::new(master_first(member_nodes, node)),
                    bytes,
                    per_dest,
                    Rc::new(RefCell::new(Some(item_done))),
                ),
                CollAlgo::OptimalSchedule => sched_bcast(
                    w,
                    sim,
                    comm,
                    master_first(member_nodes, node),
                    value2.len() as u64,
                    per_dest,
                    item_done,
                ),
            }
        })
    } else {
        // Plain reduce (result only on the root) or a degenerate one-node
        // allreduce: respond the moment the gather completes.
        Box::new(move |w: &mut BW, sim: &mut Sim<BW>| {
            for &rank in &members {
                w.engine.blocked[rank] = None;
                let resp = if all {
                    MpiResp::Data(value.clone())
                } else if rank == root_world {
                    MpiResp::RootData(Some(value.clone()))
                } else {
                    MpiResp::RootData(None)
                };
                w.engine.restart_queue.push((rank, resp));
            }
            crate::protocol::work_item_done(w, sim, node);
            mpi_api::runtime::drain(w, sim);
        })
    };

    run_gather_leg(w, sim, node, comm, member_nodes, bytes, true, algo, finish);
}

// PANIC-OK: allgather segments were sized at post time from the same

// member counts used to index them here.

fn rm_allgather(w: &mut BW, sim: &mut Sim<BW>, node: NodeId, mut round: CollRound) {
    w.engine.stats.allgathers += 1;
    let comm = round.comm;
    let members = Rc::new(w.engine.comms.members(comm).to_vec());
    // Value plane: every member's contribution, ascending communicator
    // rank — identical under every algorithm and engine.
    let parts: Vec<Payload> = round
        .contribs
        .iter_mut()
        .map(|c| c.take().expect("missing allgather contribution"))
        .collect();
    let total: usize = parts.iter().map(|p| p.len()).sum();

    let member_nodes = w.engine.member_nodes(comm);
    let nn = member_nodes.len();
    let algo = w.engine.cfg.coll_algo;
    let layout = w.engine.layout.clone();

    let per_dest: NodeFn = {
        let members = Rc::clone(&members);
        let parts = parts.clone();
        Rc::new(move |w: &mut BW, sim: &mut Sim<BW>, d: NodeId| {
            let ranks: Vec<usize> = layout
                .ranks_on(d)
                .filter(|r| members.contains(r))
                .collect();
            for rank in ranks {
                w.engine.blocked[rank] = None;
                w.engine.restart_queue.push((
                    rank,
                    MpiResp::Gathered {
                        parts: parts.clone(),
                    },
                ));
            }
            mpi_api::runtime::drain(w, sim);
        })
    };

    // Gather to the root, then broadcast the concatenation back — both
    // legs under the active algorithm. The gather leg's wire model charges
    // every edge the full result size (a stated upper bound; DESIGN §14).
    let finish: Box<dyn FnOnce(&mut BW, &mut Sim<BW>)> = if nn > 1 {
        Box::new(move |w: &mut BW, sim: &mut Sim<BW>| {
            let member_nodes = w.engine.member_nodes(comm);
            let bytes = total as u64 + w.engine.cfg.desc_bytes;
            let item_done: Box<dyn FnOnce(&mut BW, &mut Sim<BW>)> =
                Box::new(move |w: &mut BW, sim: &mut Sim<BW>| {
                    crate::protocol::work_item_done(w, sim, node);
                    mpi_api::runtime::drain(w, sim);
                });
            match w.engine.cfg.coll_algo {
                CollAlgo::HwMulticast => {
                    let done_at = BcsCluster::xfer_and_signal(
                        w,
                        sim,
                        node,
                        &member_nodes,
                        bytes,
                        bcs_core::XsOpts {
                            remote_event: None,
                            local_event: None,
                            on_deliver: Some(per_dest),
                        },
                    );
                    sim.schedule_at(done_at, move |w: &mut BW, sim: &mut Sim<BW>| {
                        item_done(w, sim);
                    });
                }
                CollAlgo::Binomial => binomial_bcast(
                    w,
                    sim,
                    Rc::new(master_first(member_nodes, node)),
                    bytes,
                    per_dest,
                    Rc::new(RefCell::new(Some(item_done))),
                ),
                CollAlgo::OptimalSchedule => sched_bcast(
                    w,
                    sim,
                    comm,
                    master_first(member_nodes, node),
                    total as u64,
                    per_dest,
                    item_done,
                ),
            }
        })
    } else {
        Box::new(move |w: &mut BW, sim: &mut Sim<BW>| {
            per_dest(w, sim, node);
            crate::protocol::work_item_done(w, sim, node);
            mpi_api::runtime::drain(w, sim);
        })
    };

    run_gather_leg(w, sim, node, comm, member_nodes, total, false, algo, finish);
}

/// Run the gather leg of a reduction/allgather: `finish` fires at the
/// instant the root holds the combined result.
///
/// * `HwMulticast`: the paper's analytic ⌈log2 n⌉-stage binomial model —
///   each stage pays latency + wire + (optional) NIC combine + descriptor
///   processing.
/// * `Binomial`: the explicit mirrored tree with real point-to-point DMAs.
/// * `OptimalSchedule`: the reversed pipelined block schedule.
#[allow(clippy::too_many_arguments)]
fn run_gather_leg(
    w: &mut BW,
    sim: &mut Sim<BW>,
    node: NodeId,
    comm: CommId,
    member_nodes: Vec<NodeId>,
    bytes: usize,
    combine: bool,
    algo: CollAlgo,
    finish: Box<dyn FnOnce(&mut BW, &mut Sim<BW>)>,
) {
    let nn = member_nodes.len();
    match algo {
        CollAlgo::HwMulticast => {
            let e = &w.engine;
            let depth = if nn <= 1 { 0 } else { log2_ceil(nn) };
            let wire = bytes as u64 + e.cfg.desc_bytes;
            let levels = e.bcs.fabric.topology().levels();
            let combine_cost = if combine {
                reduce_delay(&e.cfg, bytes)
            } else {
                SimDuration::ZERO
            };
            let stage = e.cfg.net.unicast_latency(2 * levels)
                + e.cfg.net.tx_time(wire)
                + combine_cost
                + e.cfg.desc_cost;
            let gather_done: SimTime = sim.now() + stage * depth as u64;
            sim.schedule_at(gather_done, move |w: &mut BW, sim: &mut Sim<BW>| {
                finish(w, sim);
            });
        }
        CollAlgo::Binomial => {
            let order = master_first(member_nodes, node);
            let wire = bytes as u64 + w.engine.cfg.desc_bytes;
            let combine_cost = if combine {
                reduce_delay(&w.engine.cfg, bytes)
            } else {
                SimDuration::ZERO
            };
            binomial_gather(w, sim, order, wire, combine_cost, finish);
        }
        CollAlgo::OptimalSchedule => {
            let order = master_first(member_nodes, node);
            sched_gather(w, sim, comm, order, bytes as u64, combine, finish);
        }
    }
}

// PANIC-OK: the finishing phase exists — this is only called from the

// phase that installed it.

fn finish_phase_with_delay(w: &mut BW, sim: &mut Sim<BW>, node: NodeId) {
    w.engine.outstanding[node.0] = 1;
    let cost = w.engine.cfg.desc_cost;
    sim.schedule_in(cost, move |w: &mut BW, sim| {
        crate::protocol::work_item_done(w, sim, node);
        mpi_api::runtime::drain(w, sim);
    });
}

/// NIC softfloat arithmetic time for `bytes` of reduce payload — the one
/// place the cost model multiplies a float.
fn reduce_delay(cfg: &BcsConfig, bytes: usize) -> SimDuration {
    // detlint: allow(D06) — cost-model arithmetic, not reduce data: one
    // IEEE-754 multiply truncated to integer nanoseconds, which is
    // bit-identical on every host. Reduce *payload* arithmetic goes through
    // `softfloat` (see `softfloat::add_f32_bits`).
    SimDuration::nanos((bytes as f64 * cfg.reduce_ns_per_byte) as u64)
}

/// NIC-side combine: floating point through the softfloat library (the NIC
/// has no FPU — §4.4), integers natively. Bit-identical to the host
/// arithmetic of the baseline, which the cross-engine tests assert.
// PANIC-OK: operand slices are sized by the dtype lane width asserted at
// post time; a mismatch is a protocol bug, not input.
pub(crate) fn combine_nic(op: ReduceOp, dtype: Datatype, a: &mut [u8], b: &[u8]) {
    assert_eq!(a.len(), b.len());
    match dtype {
        Datatype::F64 => {
            for (ca, cb) in a.chunks_exact_mut(8).zip(b.chunks_exact(8)) {
                let x = F64::from_bits(u64::from_le_bytes(ca.try_into().unwrap()));
                let y = F64::from_bits(u64::from_le_bytes(cb.try_into().unwrap()));
                let r = match op {
                    ReduceOp::Sum => x.add(y),
                    ReduceOp::Prod => x.mul(y),
                    ReduceOp::Min => x.min(y),
                    ReduceOp::Max => x.max(y),
                    ReduceOp::BAnd | ReduceOp::BOr => {
                        panic!("bitwise reduction on floating-point data")
                    }
                };
                ca.copy_from_slice(&r.to_bits().to_le_bytes());
            }
        }
        Datatype::F32 => {
            for (ca, cb) in a.chunks_exact_mut(4).zip(b.chunks_exact(4)) {
                let x = F32::from_bits(u32::from_le_bytes(ca.try_into().unwrap()));
                let y = F32::from_bits(u32::from_le_bytes(cb.try_into().unwrap()));
                let r = match op {
                    ReduceOp::Sum => x.add(y),
                    ReduceOp::Prod => x.mul(y),
                    ReduceOp::Min => x.min(y),
                    ReduceOp::Max => x.max(y),
                    ReduceOp::BAnd | ReduceOp::BOr => {
                        panic!("bitwise reduction on floating-point data")
                    }
                };
                ca.copy_from_slice(&r.to_bits().to_le_bytes());
            }
        }
        _ => combine_native(op, dtype, a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_words_avoid_the_reserved_range_and_each_other() {
        let mut seen = std::collections::BTreeSet::new();
        for comm in 0..512u32 {
            for slot in 0..SLOTS_PER_COMM as usize {
                let word = flag_word(CommId(comm), slot);
                assert!(
                    word >= crate::words::RESERVED,
                    "comm{comm} slot{slot} -> {word} is a reserved protocol word"
                );
                assert_ne!(word, crate::words::MP_DONE);
                assert!(
                    seen.insert(word),
                    "comm{comm} slot{slot} -> {word} collides with another communicator"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "overflows the global-word space")]
    fn flag_word_overflow_is_caught() {
        let _ = flag_word(CommId(u32::MAX / 2), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "collective slot out of range")]
    fn flag_word_rejects_out_of_range_slots() {
        let _ = flag_word(CommId(0), SLOTS_PER_COMM as usize);
    }

    #[test]
    fn every_kind_maps_to_a_distinct_slot_below_the_window() {
        let kinds = [
            CollKind::Barrier,
            CollKind::Bcast,
            CollKind::Reduce { all: false },
            CollKind::Reduce { all: true },
            CollKind::Allgather,
        ];
        let mut slots = std::collections::BTreeSet::new();
        for k in kinds {
            assert!((k.slot() as u32) < SLOTS_PER_COMM);
            slots.insert(k.slot());
        }
        assert_eq!(slots.len(), 4, "both reduce variants share a slot");
    }
}
