//! Persistent communication-schedule compilation (ROADMAP item 3).
//!
//! BCS-MPI buffers a whole slice's descriptors before scheduling them
//! (PAPER.md §3–4), so the BR sees the complete communication pattern of
//! the slice at once — and bulk-synchronous applications repeat the same
//! pattern slice after slice. This module exploits that: a per-NIC
//! [`Detector`] fingerprints every eligible MSM input (the drained arrival
//! list plus the posted receive set, in order), and once the fingerprint
//! has repeated [`SchedCompileCfg::detect_after`] times the next indexed
//! matching pass is *recorded* into a [`Compiled`] schedule — a
//! send↔recv pairing pinned to arrival/post **positions** plus the planned
//! chunk per pair. Subsequent slices validate the input with the same
//! cheap digest and replay the pairing without re-running MSM matching.
//!
//! Correctness contract (property-checked by
//! `crates/core/tests/schedule_equivalence.rs`):
//!
//! * replay is observably transparent — match results, budget arithmetic,
//!   NIC-cost accounting, virtual timings and checkpoint digests are
//!   bit-identical to the indexed path (which itself is bit-identical to
//!   `match_index::reference`, the executable specification);
//! * any deviation — digest mismatch, insufficient budget, a pattern the
//!   compiler refused (unmatched arrivals, zero-byte messages, chunked
//!   messages, leftover receives) — falls back to the indexed path for
//!   that slice;
//! * compiled state is *not* checkpointed: an image capture invalidates it
//!   (see `checkpoint.rs`), and a restored engine starts cold. Because
//!   replay is transparent, warm and cold engines produce identical runs.
//!
//! The fingerprint is a 64-bit word-folded FNV-1a variant over the
//! envelope/selector shape only: the arrival count, then
//! `(dst, src, tag, bytes)` per arrival in arrival order, then the
//! receive-side digest as one word (`RecvIndex::shape_digest` —
//! `(dst, src-sel, tag-sel)` per posted receive in post order folded with
//! the count, maintained incrementally by the index so steady-state
//! validation never re-walks the posted set). Message and request
//! identifiers are deliberately excluded: they advance every slice even
//! when the pattern is stable.

use crate::match_index::{RecvSel, SendKey};
use mpi_api::message::{SrcSel, TagSel};

/// Knobs of the pattern detector (`BcsConfig::sched_compile`).
#[derive(Clone, Copy, Debug)]
pub struct SchedCompileCfg {
    /// Consecutive identical slice fingerprints required before the next
    /// matching pass is recorded into a compiled schedule.
    pub detect_after: u32,
}

impl Default for SchedCompileCfg {
    fn default() -> Self {
        SchedCompileCfg { detect_after: 3 }
    }
}

/// Streaming 64-bit digest over the slice's descriptor shape: FNV-1a
/// folded a whole word at a time, with a rotate so differences propagate
/// both up and down the lane. Validation re-hashes every eligible slice,
/// so the per-word cost (one xor, one rotate, one multiply) is on the
/// replay fast path — byte-at-a-time FNV would spend 8 multiplies per
/// word fingerprinting what the schedule saved in matching.
#[derive(Clone, Copy, Debug)]
pub struct FpBuilder(u64);

impl Default for FpBuilder {
    fn default() -> Self {
        FpBuilder(0xcbf2_9ce4_8422_2325)
    }
}

impl FpBuilder {
    pub fn new() -> FpBuilder {
        FpBuilder::default()
    }

    #[inline]
    pub fn word(&mut self, w: u64) {
        self.0 = (self.0 ^ w).rotate_left(23).wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Fold one remote send descriptor, in arrival order.
    #[inline]
    pub fn arrival(&mut self, key: &SendKey, bytes: u64) {
        self.word(key.dst_rank as u64);
        self.word(key.src_rank as u64);
        self.word(key.tag as u64);
        self.word(bytes);
    }

    /// Fold one posted receive, in post order. Wildcards get sentinel
    /// encodings outside the rank/tag value spaces.
    #[inline]
    pub fn recv(&mut self, sel: &RecvSel) {
        self.word(sel.dst_rank as u64);
        self.word(match sel.src {
            SrcSel::Rank(r) => r as u64,
            SrcSel::Any => u64::MAX,
        });
        self.word(match sel.tag {
            TagSel::Tag(t) => t as u64,
            TagSel::Any => u64::MAX - 1,
        });
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

/// One pre-matched pair of the compiled schedule: the `arrival`-th drained
/// send descriptor matches the `recv`-th posted receive (both positions,
/// not sequence numbers — sequences advance every slice).
#[derive(Clone, Copy, Debug)]
pub struct Pair {
    pub arrival: u32,
    pub recv: u32,
    /// Source fabric node, pre-resolved from the sender's rank.
    pub src_node: u32,
    /// Message length; the planned chunk equals it (the compiler refuses
    /// patterns whose messages did not fit one slice's budget).
    pub total: u64,
}

/// A persistent schedule: the fingerprint it is valid for plus the
/// position-pinned pairing and chunk plan, in arrival order.
#[derive(Clone, Debug)]
pub struct Compiled {
    pub fingerprint: u64,
    pub pairs: Vec<Pair>,
    /// Aggregate bytes needed per distinct source node, ascending by node —
    /// precomputed here so replay-time budget validation (and the debit
    /// itself) is O(distinct sources), not O(pairs). Budgets are plain
    /// counters, so debiting the sum is arithmetic-identical to debiting
    /// pair by pair.
    pub src_need: Vec<(u32, u64)>,
    /// Aggregate bytes into the destination node.
    pub dst_need: u64,
}

impl Compiled {
    pub fn new(fingerprint: u64, pairs: Vec<Pair>) -> Compiled {
        let mut per: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        let mut dst_need = 0u64;
        for p in &pairs {
            *per.entry(p.src_node).or_insert(0) += p.total;
            dst_need += p.total;
        }
        Compiled {
            fingerprint,
            pairs,
            src_need: per.into_iter().collect(),
            dst_need,
        }
    }
}

/// Compile/replay/fallback counters, per NIC (aggregated by
/// `BcsMpi::sched_stats`). Deliberately *not* part of `BcsStats`: a
/// restored engine starts with a cold detector, so these counters are the
/// one place where an original and a recovered run legitimately differ —
/// keeping them out of the checkpointed stats keeps recovery bit-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Schedules compiled (indexed passes recorded).
    pub compiled: u64,
    /// Slices replayed from a compiled schedule without MSM matching.
    pub replays: u64,
    /// Compiled schedules dropped: fingerprint drift or image capture.
    pub invalidations: u64,
    /// Replays abandoned at validation time (e.g. competing traffic left
    /// too little budget) — the slice ran the indexed path instead.
    pub fallbacks: u64,
}

impl DetectorStats {
    pub fn add(&mut self, o: &DetectorStats) {
        self.compiled += o.compiled;
        self.replays += o.replays;
        self.invalidations += o.invalidations;
        self.fallbacks += o.fallbacks;
    }
}

/// What the MSM pass should do with the current slice's input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SliceAction {
    /// A compiled schedule matches the fingerprint: validate budgets and
    /// replay (fall back via [`Detector::replay_fallback`] if they don't).
    Replay,
    /// The pattern has been stable for `detect_after` slices: run the
    /// indexed pass and record it ([`Detector::install`] /
    /// [`Detector::compile_failed`]).
    Compile,
    /// Run the plain indexed pass.
    Indexed,
}

/// Per-NIC pattern detector state. Lives beside the engine's NIC state but
/// is never checkpointed (see module docs).
#[derive(Clone, Debug, Default)]
pub struct Detector {
    last_fp: u64,
    streak: u32,
    compiled: Option<Compiled>,
    pub stats: DetectorStats,
}

impl Detector {
    /// Classify one eligible slice input by fingerprint.
    pub fn observe(&mut self, fp: u64, detect_after: u32) -> SliceAction {
        if let Some(c) = &self.compiled {
            if c.fingerprint == fp {
                return SliceAction::Replay;
            }
            // The pattern moved on: the schedule can never validate again.
            self.compiled = None;
            self.stats.invalidations += 1;
        }
        if fp == self.last_fp && self.streak > 0 {
            self.streak += 1;
        } else {
            self.last_fp = fp;
            self.streak = 1;
        }
        if self.streak >= detect_after {
            SliceAction::Compile
        } else {
            SliceAction::Indexed
        }
    }

    /// The recorded indexed pass met every eligibility condition: persist it.
    pub fn install(&mut self, c: Compiled) {
        debug_assert!(self.compiled.is_none());
        self.compiled = Some(c);
        self.stats.compiled += 1;
    }

    /// The recorded pass was ineligible (unmatched arrival, zero-byte or
    /// chunked message, leftover receives). Reset the streak so the next
    /// `detect_after` identical slices earn exactly one more attempt —
    /// a structurally uncompilable pattern costs one recording pass per
    /// `detect_after` slices, not one per slice.
    pub fn compile_failed(&mut self) {
        self.streak = 0;
    }

    /// A replay was abandoned at validation time; the schedule stays
    /// installed for the next slice.
    pub fn replay_fallback(&mut self) {
        self.stats.fallbacks += 1;
    }

    /// The schedule replayed cleanly.
    pub fn replayed(&mut self) {
        self.stats.replays += 1;
    }

    pub fn compiled(&self) -> Option<&Compiled> {
        self.compiled.as_ref()
    }

    /// Drop all learned state (image capture, explicit reset). Counts as an
    /// invalidation only if a compiled schedule was actually lost.
    pub fn invalidate(&mut self) {
        if self.compiled.take().is_some() {
            self.stats.invalidations += 1;
        }
        self.streak = 0;
        self.last_fp = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(words: &[u64]) -> u64 {
        let mut b = FpBuilder::new();
        for &w in words {
            b.word(w);
        }
        b.finish()
    }

    #[test]
    fn detector_compiles_after_k_identical_slices_and_replays() {
        let mut d = Detector::default();
        let a = fp(&[1, 2, 3]);
        assert_eq!(d.observe(a, 3), SliceAction::Indexed);
        assert_eq!(d.observe(a, 3), SliceAction::Indexed);
        assert_eq!(d.observe(a, 3), SliceAction::Compile);
        d.install(Compiled::new(a, vec![]));
        assert_eq!(d.observe(a, 3), SliceAction::Replay);
        d.replayed();
        assert_eq!(d.stats.compiled, 1);
        assert_eq!(d.stats.replays, 1);
    }

    #[test]
    fn fingerprint_drift_invalidates_and_relearns() {
        let mut d = Detector::default();
        let (a, b) = (fp(&[7]), fp(&[8]));
        assert_ne!(a, b);
        for _ in 0..2 {
            d.observe(a, 2);
        }
        d.install(Compiled::new(a, vec![]));
        // A different slice shape drops the schedule and restarts the streak.
        assert_eq!(d.observe(b, 2), SliceAction::Indexed);
        assert_eq!(d.stats.invalidations, 1);
        assert!(d.compiled().is_none());
        assert_eq!(d.observe(b, 2), SliceAction::Compile);
    }

    #[test]
    fn failed_compilation_backs_off_a_full_streak() {
        let mut d = Detector::default();
        let a = fp(&[9]);
        d.observe(a, 2);
        assert_eq!(d.observe(a, 2), SliceAction::Compile);
        d.compile_failed();
        // One full streak before the next attempt, not an attempt per slice.
        assert_eq!(d.observe(a, 2), SliceAction::Indexed);
        assert_eq!(d.observe(a, 2), SliceAction::Compile);
    }

    #[test]
    fn invalidate_resets_learned_state_and_counts_lost_schedules() {
        let mut d = Detector::default();
        let a = fp(&[4]);
        d.observe(a, 1);
        d.install(Compiled::new(a, vec![]));
        d.invalidate();
        assert_eq!(d.stats.invalidations, 1);
        d.invalidate(); // idempotent: nothing left to lose
        assert_eq!(d.stats.invalidations, 1);
        assert_eq!(d.observe(a, 1), SliceAction::Compile);
    }

    #[test]
    fn fingerprints_separate_selector_shapes_and_sizes() {
        let sel = |src, tag| RecvSel {
            dst_rank: 0,
            src,
            tag,
        };
        let key = SendKey {
            dst_rank: 0,
            src_rank: 1,
            tag: 5,
        };
        let digest = |sel: &RecvSel, bytes: u64| {
            let mut b = FpBuilder::new();
            b.arrival(&key, bytes);
            b.recv(sel);
            b.finish()
        };
        let exact = digest(&sel(SrcSel::Rank(1), TagSel::Tag(5)), 64);
        assert_ne!(exact, digest(&sel(SrcSel::Any, TagSel::Tag(5)), 64));
        assert_ne!(exact, digest(&sel(SrcSel::Rank(1), TagSel::Any), 64));
        assert_ne!(exact, digest(&sel(SrcSel::Rank(1), TagSel::Tag(5)), 65));
    }
}
