//! Indexed descriptor matching — the large-N replacement for the BR's
//! linear scans.
//!
//! The paper's BR matches each incoming send descriptor against the local
//! receive-descriptor list, first match in post order (MPI non-overtaking).
//! A literal list scan costs O(posted receives) per descriptor, which makes
//! the *harness* quadratic on exactly the sweeps the paper scales (§5). The
//! structures here make every hot operation O(log n) or amortized O(1)
//! while reproducing the scan's results bit for bit:
//!
//! * [`RecvIndex`] — posted receives, bucketed by selector specificity.
//!   Every receive carries a monotonically increasing *post sequence* and
//!   lands in exactly one bucket: `(dst, src, tag)` exact, `(dst, tag)`
//!   source-wildcard, `(dst, src)` tag-wildcard, or `(dst)` fully wild.
//!   An incoming `(dst, src, tag)` can only be matched by those four
//!   buckets, each of which is FIFO in post order — so the first eligible
//!   receive in post order is simply the minimum head sequence of the four
//!   queues. Cancellation removes from the master map only; stale queue
//!   heads are skipped lazily (each skip is paid for by one cancellation).
//! * [`SendIndex`] — unmatched remote send descriptors in arrival order,
//!   with per-`(dst, src, tag)` FIFO queues so probes are O(1) for exact
//!   selectors and O(distinct keys) for wildcards (taking the *minimum*
//!   arrival sequence over matching keys, so hash-iteration order never
//!   leaks into results). The index also remembers how many entries have
//!   already been examined against the current receive set: a backlog of
//!   unmatched sends is only re-examined when a new receive has been
//!   posted, so an idle backlog costs nothing per slice.
//! * [`InflightQueue`] — matching descriptors keyed by message, iterated
//!   in match order (the order chunk budgets are granted in), with O(1)
//!   lookup replacing the per-chunk list scans.
//! * [`LazyBudget`] — per-node P2P byte budgets with generation-stamped
//!   lazy reset: a slice boundary bumps one generation counter instead of
//!   rewriting O(nodes) entries, so idle nodes cost nothing per slice.
//!
//! Determinism: all iteration that can reach an observable result (matching,
//! probing, checkpoint capture) goes through sequence-ordered `BTreeMap`s or
//! takes numeric minima; the interior `HashMap`s are reached only by exact
//! key. [`reference`] keeps the original linear-scan matcher alive as the
//! executable specification; `crates/core/tests/match_equivalence.rs`
//! property-checks the two against each other, and the `engine_throughput`
//! microbench races them (`matching gate` in `scripts/verify.sh`).

use mpi_api::message::{SrcSel, TagSel};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Cheap, deterministic 64-bit hasher (FxHash-style rotate-xor-multiply)
/// for the fixed-width keys of the match index. std's default SipHash
/// costs more than the rest of a match step on these ~16-byte keys;
/// hash-order determinism is irrelevant here because no observable path
/// iterates a map — winners are always chosen by sequence-number minima.
#[derive(Clone, Copy, Default, Debug)]
pub struct FxBuildHasher;

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;
    fn build_hasher(&self) -> FxHasher {
        FxHasher(0)
    }
}

#[derive(Clone, Copy)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// The selector triple a receive is posted with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvSel {
    pub dst_rank: usize,
    pub src: SrcSel,
    pub tag: TagSel,
}

/// The envelope triple a send descriptor is addressed with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SendKey {
    pub dst_rank: usize,
    pub src_rank: usize,
    pub tag: i32,
}

impl RecvSel {
    pub fn accepts(&self, key: &SendKey) -> bool {
        self.dst_rank == key.dst_rank
            && self.src.matches(key.src_rank)
            && self.tag.matches(key.tag)
    }
}

/// One bucket per selector-specificity class; a receive lives in exactly
/// one, so a `(dst, src, tag)` lookup touches at most four buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum ClassKey {
    Exact { dst: usize, src: usize, tag: i32 },
    AnySrc { dst: usize, tag: i32 },
    AnyTag { dst: usize, src: usize },
    AnyAny { dst: usize },
}

fn class_of(sel: &RecvSel) -> ClassKey {
    match (sel.src, sel.tag) {
        (SrcSel::Rank(src), TagSel::Tag(tag)) => ClassKey::Exact {
            dst: sel.dst_rank,
            src,
            tag,
        },
        (SrcSel::Any, TagSel::Tag(tag)) => ClassKey::AnySrc {
            dst: sel.dst_rank,
            tag,
        },
        (SrcSel::Rank(src), TagSel::Any) => ClassKey::AnyTag {
            dst: sel.dst_rank,
            src,
        },
        (SrcSel::Any, TagSel::Any) => ClassKey::AnyAny { dst: sel.dst_rank },
    }
}

// ----------------------------------------------------------------------
// RecvIndex
// ----------------------------------------------------------------------

/// Posted receives indexed for O(log n) first-in-post-order matching.
#[derive(Clone)]
pub struct RecvIndex<T> {
    /// Source of truth, keyed by post sequence (= post order).
    master: BTreeMap<u64, (RecvSel, T)>,
    /// FIFO of post sequences per specificity bucket. May hold sequences
    /// already cancelled from `master`; heads are pruned lazily.
    classes: FxHashMap<ClassKey, VecDeque<u64>>,
    next_seq: u64,
    /// Running selector-shape digest in post order (see [`Self::shape_digest`]).
    /// Valid while every removal so far has left the set empty — true on a
    /// schedule-replay streak, where each slice consumes the whole set.
    digest: crate::schedule::FpBuilder,
    digest_ok: bool,
}

impl<T> Default for RecvIndex<T> {
    fn default() -> Self {
        RecvIndex {
            master: BTreeMap::new(),
            classes: FxHashMap::default(),
            next_seq: 0,
            digest: crate::schedule::FpBuilder::new(),
            digest_ok: true,
        }
    }
}

impl<T> RecvIndex<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a receive; returns its post sequence (usable with `cancel`).
    pub fn post(&mut self, sel: RecvSel, item: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.classes.entry(class_of(&sel)).or_default().push_back(seq);
        if self.digest_ok {
            self.digest.recv(&sel); // append-only: post order == iter order
        }
        self.master.insert(seq, (sel, item));
        seq
    }

    /// A removal happened: the cached digest stays valid only if the set is
    /// now empty (a fresh digest over nothing), otherwise the next
    /// [`Self::shape_digest`] re-walks.
    #[inline]
    fn note_removed(&mut self) {
        if self.master.is_empty() {
            self.digest = crate::schedule::FpBuilder::new();
            self.digest_ok = true;
        } else {
            self.digest_ok = false;
        }
    }

    /// Live head sequence of one bucket, pruning cancelled entries.
    fn head(&mut self, key: ClassKey) -> Option<u64> {
        let q = self.classes.get_mut(&key)?;
        while let Some(&seq) = q.front() {
            if self.master.contains_key(&seq) {
                return Some(seq);
            }
            q.pop_front();
        }
        self.classes.remove(&key);
        None
    }

    /// Remove and return the first receive in post order whose selectors
    /// accept `(dst_rank, src_rank, tag)` — exactly what the linear scan's
    /// `position(|rd| rd.matches(...))` yields.
    pub fn match_first(&mut self, key: &SendKey) -> Option<(RecvSel, T)> {
        self.match_first_seq(key).map(|(_, sel, item)| (sel, item))
    }

    /// [`Self::match_first`] that also reports the winner's post sequence —
    /// the schedule compiler records it to pin a send↔recv pairing to recv
    /// *positions* (see `crate::schedule`).
    pub fn match_first_seq(&mut self, key: &SendKey) -> Option<(u64, RecvSel, T)> {
        let candidates = [
            ClassKey::Exact {
                dst: key.dst_rank,
                src: key.src_rank,
                tag: key.tag,
            },
            ClassKey::AnySrc {
                dst: key.dst_rank,
                tag: key.tag,
            },
            ClassKey::AnyTag {
                dst: key.dst_rank,
                src: key.src_rank,
            },
            ClassKey::AnyAny { dst: key.dst_rank },
        ];
        let mut best: Option<(u64, ClassKey)> = None;
        for ck in candidates {
            if let Some(seq) = self.head(ck) {
                if best.is_none_or(|(s, _)| seq < s) {
                    best = Some((seq, ck));
                }
            }
        }
        let (seq, ck) = best?;
        let q = self.classes.get_mut(&ck).expect("winning bucket vanished");
        debug_assert_eq!(q.front(), Some(&seq));
        q.pop_front();
        if q.is_empty() {
            self.classes.remove(&ck);
        }
        let out = self.master.remove(&seq).map(|(sel, item)| (seq, sel, item));
        if out.is_some() {
            self.note_removed();
        }
        out
    }

    /// Remove and return every live receive, in post order. Used by the
    /// schedule replay path, which the compiler only enters when the
    /// compiled pattern is known to consume the entire receive set.
    pub fn take_all(&mut self) -> Vec<(RecvSel, T)> {
        self.classes.clear();
        self.digest = crate::schedule::FpBuilder::new();
        self.digest_ok = true;
        std::mem::take(&mut self.master).into_values().collect()
    }

    /// Cancel the receive with the given post sequence (tombstones its
    /// bucket entry; pruned lazily).
    pub fn cancel(&mut self, seq: u64) -> Option<(RecvSel, T)> {
        let out = self.master.remove(&seq);
        if out.is_some() {
            self.note_removed();
        }
        out
    }

    pub fn len(&self) -> usize {
        self.master.len()
    }

    pub fn is_empty(&self) -> bool {
        self.master.is_empty()
    }

    /// Live receives in post order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &RecvSel, &T)> {
        self.master.iter().map(|(&seq, (sel, item))| (seq, sel, item))
    }

    /// 64-bit digest of the live selector set — `(dst, src-sel, tag-sel)`
    /// per receive in post order, folded with the entry count. This is the
    /// receive half of the slice fingerprint (`crate::schedule`): it is
    /// maintained incrementally at post time and reset whenever the set
    /// empties, so on a replay streak — where every slice consumes the
    /// entire set — validation costs O(1) here instead of an O(n) re-walk.
    /// A removal that leaves live entries behind invalidates the cache and
    /// the next call pays one re-walk.
    pub fn shape_digest(&mut self) -> u64 {
        if !self.digest_ok {
            let mut b = crate::schedule::FpBuilder::new();
            for (_, sel, _) in self.iter() {
                b.recv(sel);
            }
            self.digest = b;
            self.digest_ok = true;
        }
        let mut b = self.digest;
        b.word(self.master.len() as u64);
        b.finish()
    }
}

// ----------------------------------------------------------------------
// SendIndex
// ----------------------------------------------------------------------

/// Unmatched remote send descriptors in arrival order, with per-envelope
/// FIFO queues for probing and an examined-watermark so a stale backlog is
/// not re-matched every slice.
#[derive(Clone)]
pub struct SendIndex<T> {
    /// Source of truth, keyed by arrival sequence (= arrival order).
    master: BTreeMap<u64, (SendKey, T)>,
    /// Arrival sequences per envelope, ascending. Kept exact (no
    /// tombstones): removal happens only via the drain calls below, which
    /// maintain the queues.
    by_key: FxHashMap<SendKey, VecDeque<u64>>,
    next_seq: u64,
    /// Sequences below this were already matched against every receive
    /// currently posted (and failed); count cached for O(1) cost
    /// accounting.
    examined_seq: u64,
    examined_len: usize,
}

impl<T> Default for SendIndex<T> {
    fn default() -> Self {
        SendIndex {
            master: BTreeMap::new(),
            by_key: FxHashMap::default(),
            next_seq: 0,
            examined_seq: 0,
            examined_len: 0,
        }
    }
}

impl<T> SendIndex<T> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, key: SendKey, item: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.by_key.entry(key).or_default().push_back(seq);
        self.master.insert(seq, (key, item));
        seq
    }

    /// Earliest-arrival entry matching the probe selectors — what the
    /// linear scan's `find(|rs| ...)` over the arrival-order list yields.
    /// Exact selectors are O(1); wildcards take the minimum arrival
    /// sequence over matching envelope keys, so the interior hash map's
    /// iteration order cannot influence the result.
    pub fn probe(&self, dst_rank: usize, src: SrcSel, tag: TagSel) -> Option<(&SendKey, &T)> {
        let seq = match (src, tag) {
            (SrcSel::Rank(src_rank), TagSel::Tag(t)) => {
                let key = SendKey {
                    dst_rank,
                    src_rank,
                    tag: t,
                };
                self.by_key.get(&key).and_then(|q| q.front().copied())
            }
            _ => self
                .by_key
                .iter()
                .filter(|(k, _)| k.dst_rank == dst_rank && src.matches(k.src_rank) && tag.matches(k.tag))
                .filter_map(|(_, q)| q.front().copied())
                .min(),
        }?;
        self.master.get(&seq).map(|(k, item)| (k, item))
    }

    /// Remove and return every entry, in arrival order.
    pub fn drain_all(&mut self) -> Vec<(SendKey, T)> {
        self.by_key.clear();
        self.examined_seq = 0;
        self.examined_len = 0;
        std::mem::take(&mut self.master).into_values().collect()
    }

    /// Remove and return only the entries pushed since [`Self::mark_examined`],
    /// in arrival order; the examined backlog stays put untouched.
    pub fn drain_new(&mut self) -> Vec<(SendKey, T)> {
        let newer = self.master.split_off(&self.examined_seq);
        for (key, _) in newer.values() {
            // Drained sequences are the largest of their queue, so they sit
            // at the back; one pop per drained entry removes exactly them.
            let q = self.by_key.get_mut(key).expect("send entry without queue");
            let back = q.pop_back();
            debug_assert!(back.is_some_and(|s| s >= self.examined_seq));
            if q.is_empty() {
                self.by_key.remove(key);
            }
        }
        newer.into_values().collect()
    }

    /// Declare every current entry examined against the current receive
    /// set: until a new receive is posted, none of them can match, and
    /// [`Self::drain_new`] will skip them.
    pub fn mark_examined(&mut self) {
        self.examined_seq = self.next_seq;
        self.examined_len = self.master.len();
    }

    /// Number of entries the examined-watermark skips.
    pub fn examined_len(&self) -> usize {
        self.examined_len
    }

    pub fn len(&self) -> usize {
        self.master.len()
    }

    pub fn is_empty(&self) -> bool {
        self.master.is_empty()
    }

    /// Live entries in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &SendKey, &T)> {
        self.master.iter().map(|(&seq, (key, item))| (seq, key, item))
    }
}

// ----------------------------------------------------------------------
// InflightQueue
// ----------------------------------------------------------------------

/// Matching descriptors in match order with O(1) lookup by key.
#[derive(Clone)]
pub struct InflightQueue<K, T> {
    master: BTreeMap<u64, T>,
    by_key: FxHashMap<K, u64>,
    next_seq: u64,
}

impl<K, T> Default for InflightQueue<K, T> {
    fn default() -> Self {
        InflightQueue {
            master: BTreeMap::new(),
            by_key: FxHashMap::default(),
            next_seq: 0,
        }
    }
}

impl<K: std::hash::Hash + Eq + Copy, T> InflightQueue<K, T> {
    pub fn push(&mut self, key: K, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let prev = self.by_key.insert(key, seq);
        debug_assert!(prev.is_none(), "duplicate in-flight key");
        self.master.insert(seq, item);
    }

    pub fn get(&self, key: &K) -> Option<&T> {
        self.by_key.get(key).and_then(|seq| self.master.get(seq))
    }

    pub fn get_mut(&mut self, key: &K) -> Option<&mut T> {
        let seq = self.by_key.get(key)?;
        self.master.get_mut(seq)
    }

    pub fn remove(&mut self, key: &K) -> Option<T> {
        let seq = self.by_key.remove(key)?;
        self.master.remove(&seq)
    }

    pub fn len(&self) -> usize {
        self.master.len()
    }

    pub fn is_empty(&self) -> bool {
        self.master.is_empty()
    }

    /// Items in match (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.master.values()
    }
}

// ----------------------------------------------------------------------
// LazyBudget
// ----------------------------------------------------------------------

/// Per-node byte budgets with generation-stamped lazy refill: a slice
/// boundary bumps the generation instead of rewriting every entry, so a
/// refill is O(1) regardless of node count and nodes that move no bytes
/// never touch their entry at all.
#[derive(Clone)]
pub struct LazyBudget {
    generation: u64,
    /// Value an entry implicitly holds when its stamp is stale.
    fill: u64,
    /// `(generation stamp, value)` per node.
    entries: Vec<(u64, u64)>,
}

impl LazyBudget {
    pub fn new(n: usize) -> LazyBudget {
        LazyBudget {
            generation: 0,
            fill: 0,
            entries: vec![(0, 0); n],
        }
    }

    /// Reset every entry to `value` — O(1).
    pub fn refill(&mut self, value: u64) {
        self.generation += 1;
        self.fill = value;
    }

    pub fn get(&self, i: usize) -> u64 {
        let (stamp, value) = self.entries[i];
        if stamp == self.generation { value } else { self.fill }
    }

    pub fn sub(&mut self, i: usize, amount: u64) {
        let current = self.get(i);
        debug_assert!(amount <= current, "budget underflow");
        self.entries[i] = (self.generation, current - amount);
    }
}

// ----------------------------------------------------------------------
// Reference matcher (the executable specification)
// ----------------------------------------------------------------------

/// The original linear-scan matcher, kept as the executable specification
/// the indexed structures are property-tested and benchmarked against.
pub mod reference {
    use super::{RecvSel, SendKey};
    use mpi_api::message::{SrcSel, TagSel};

    /// Posted receives as a flat list in post order; every operation is the
    /// literal scan the BR used to perform.
    #[derive(Clone, Default)]
    pub struct LinearRecvList<T> {
        entries: Vec<(u64, RecvSel, T)>,
        next_seq: u64,
    }

    impl<T> LinearRecvList<T> {
        pub fn new() -> Self {
            LinearRecvList {
                entries: Vec::new(),
                next_seq: 0,
            }
        }

        pub fn post(&mut self, sel: RecvSel, item: T) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.entries.push((seq, sel, item));
            seq
        }

        pub fn match_first(&mut self, key: &SendKey) -> Option<(RecvSel, T)> {
            self.match_first_seq(key).map(|(_, sel, item)| (sel, item))
        }

        pub fn match_first_seq(&mut self, key: &SendKey) -> Option<(u64, RecvSel, T)> {
            let pos = self.entries.iter().position(|(_, sel, _)| sel.accepts(key))?;
            let (seq, sel, item) = self.entries.remove(pos);
            Some((seq, sel, item))
        }

        /// Every live receive in post order, literally the list itself.
        pub fn take_all(&mut self) -> Vec<(RecvSel, T)> {
            std::mem::take(&mut self.entries)
                .into_iter()
                .map(|(_, sel, item)| (sel, item))
                .collect()
        }

        pub fn cancel(&mut self, seq: u64) -> Option<(RecvSel, T)> {
            let pos = self.entries.iter().position(|(s, _, _)| *s == seq)?;
            let (_, sel, item) = self.entries.remove(pos);
            Some((sel, item))
        }

        pub fn len(&self) -> usize {
            self.entries.len()
        }

        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        pub fn iter(&self) -> impl Iterator<Item = (u64, &RecvSel, &T)> {
            self.entries.iter().map(|(seq, sel, item)| (*seq, sel, item))
        }
    }

    /// Unmatched sends as a flat list in arrival order.
    #[derive(Clone, Default)]
    pub struct LinearSendList<T> {
        entries: Vec<(SendKey, T)>,
    }

    impl<T> LinearSendList<T> {
        pub fn new() -> Self {
            LinearSendList { entries: Vec::new() }
        }

        pub fn push(&mut self, key: SendKey, item: T) {
            self.entries.push((key, item));
        }

        pub fn probe(&self, dst_rank: usize, src: SrcSel, tag: TagSel) -> Option<(&SendKey, &T)> {
            self.entries
                .iter()
                .find(|(k, _)| k.dst_rank == dst_rank && src.matches(k.src_rank) && tag.matches(k.tag))
                .map(|(k, item)| (k, item))
        }

        pub fn drain_all(&mut self) -> Vec<(SendKey, T)> {
            std::mem::take(&mut self.entries)
        }

        pub fn len(&self) -> usize {
            self.entries.len()
        }

        pub fn iter(&self) -> impl Iterator<Item = (&SendKey, &T)> {
            self.entries.iter().map(|(k, item)| (k, item))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(dst: usize, src: SrcSel, tag: TagSel) -> RecvSel {
        RecvSel {
            dst_rank: dst,
            src,
            tag,
        }
    }

    fn key(dst: usize, src: usize, tag: i32) -> SendKey {
        SendKey {
            dst_rank: dst,
            src_rank: src,
            tag,
        }
    }

    #[test]
    fn match_first_prefers_post_order_across_classes() {
        let mut idx = RecvIndex::new();
        idx.post(sel(0, SrcSel::Any, TagSel::Any), 'a');
        idx.post(sel(0, SrcSel::Rank(1), TagSel::Tag(7)), 'b');
        // Both buckets accept (0, 1, 7); the wildcard was posted first.
        assert_eq!(idx.match_first(&key(0, 1, 7)).unwrap().1, 'a');
        assert_eq!(idx.match_first(&key(0, 1, 7)).unwrap().1, 'b');
        assert!(idx.match_first(&key(0, 1, 7)).is_none());
    }

    #[test]
    fn match_first_seq_reports_the_post_sequence_and_take_all_drains() {
        let mut idx = RecvIndex::new();
        let mut linear = reference::LinearRecvList::new();
        for (i, s) in [SrcSel::Any, SrcSel::Rank(1), SrcSel::Rank(2)].into_iter().enumerate() {
            idx.post(sel(0, s, TagSel::Tag(3)), i);
            linear.post(sel(0, s, TagSel::Tag(3)), i);
        }
        let (seq, _, item) = idx.match_first_seq(&key(0, 2, 3)).unwrap();
        let (lseq, _, litem) = linear.match_first_seq(&key(0, 2, 3)).unwrap();
        assert_eq!((seq, item), (0, 0), "wildcard posted first wins");
        assert_eq!((lseq, litem), (seq, item), "reference agrees");
        // take_all returns the survivors in post order, and empties both.
        let rest: Vec<usize> = idx.take_all().into_iter().map(|(_, i)| i).collect();
        let lrest: Vec<usize> = linear.take_all().into_iter().map(|(_, i)| i).collect();
        assert_eq!(rest, vec![1, 2]);
        assert_eq!(lrest, rest);
        assert!(idx.is_empty() && linear.is_empty());
        // The index is still usable after a take_all.
        idx.post(sel(0, SrcSel::Rank(9), TagSel::Tag(1)), 7);
        assert_eq!(idx.match_first(&key(0, 9, 1)).unwrap().1, 7);
    }

    #[test]
    fn cancel_tombstones_are_skipped() {
        let mut idx = RecvIndex::new();
        let s0 = idx.post(sel(0, SrcSel::Rank(2), TagSel::Tag(1)), 0);
        idx.post(sel(0, SrcSel::Rank(2), TagSel::Tag(1)), 1);
        assert!(idx.cancel(s0).is_some());
        assert_eq!(idx.match_first(&key(0, 2, 1)).unwrap().1, 1);
        assert!(idx.is_empty());
    }

    #[test]
    fn shape_digest_cache_always_equals_a_fresh_walk() {
        // The cached digest must be indistinguishable from recomputing over
        // the live set, through every mutation path: posts (cache extends),
        // a mid-set match (cache invalidated, re-walk), cancel, emptying
        // (cache resets), and take_all (replay path).
        let fresh = |idx: &RecvIndex<usize>| {
            let mut b = crate::schedule::FpBuilder::new();
            for (_, s, _) in idx.iter() {
                b.recv(s);
            }
            b.word(idx.len() as u64);
            b.finish()
        };
        let mut idx = RecvIndex::new();
        assert_eq!(idx.shape_digest(), fresh(&idx), "empty");
        for i in 0..5usize {
            idx.post(sel(0, SrcSel::Rank(i), TagSel::Tag(i as i32)), i);
            assert_eq!(idx.shape_digest(), fresh(&idx), "after post {i}");
        }
        idx.match_first(&key(0, 2, 2)).unwrap(); // removal mid-set
        assert_eq!(idx.shape_digest(), fresh(&idx), "after mid-set match");
        let s = idx.post(sel(0, SrcSel::Any, TagSel::Any), 9);
        assert_eq!(idx.shape_digest(), fresh(&idx), "post after re-walk");
        idx.cancel(s).unwrap();
        assert_eq!(idx.shape_digest(), fresh(&idx), "after cancel");
        idx.take_all();
        assert_eq!(idx.shape_digest(), fresh(&idx), "after take_all");
        idx.post(sel(1, SrcSel::Rank(0), TagSel::Tag(0)), 0);
        assert_eq!(idx.shape_digest(), fresh(&idx), "reuse after take_all");
        idx.match_first(&key(1, 0, 0)).unwrap(); // removal emptying the set
        assert_eq!(idx.shape_digest(), fresh(&idx), "emptied by match");
    }

    #[test]
    fn send_index_probe_and_watermark() {
        let mut idx = SendIndex::new();
        idx.push(key(0, 1, 5), "early");
        idx.push(key(0, 2, 5), "late");
        // Wildcard probe returns the earliest arrival.
        assert_eq!(idx.probe(0, SrcSel::Any, TagSel::Tag(5)).unwrap().1, &"early");
        assert_eq!(idx.probe(0, SrcSel::Rank(2), TagSel::Tag(5)).unwrap().1, &"late");
        assert!(idx.probe(1, SrcSel::Any, TagSel::Any).is_none());

        idx.mark_examined();
        assert_eq!(idx.examined_len(), 2);
        idx.push(key(0, 3, 9), "new");
        let fresh = idx.drain_new();
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].1, "new");
        assert_eq!(idx.len(), 2);
        // The retained entries are still probeable.
        assert!(idx.probe(0, SrcSel::Rank(1), TagSel::Tag(5)).is_some());
        let all = idx.drain_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, "early");
    }

    #[test]
    fn lazy_budget_refills_in_o1() {
        let mut b = LazyBudget::new(3);
        assert_eq!(b.get(0), 0);
        b.refill(100);
        assert_eq!(b.get(2), 100);
        b.sub(2, 30);
        assert_eq!(b.get(2), 70);
        assert_eq!(b.get(1), 100);
        b.refill(100);
        assert_eq!(b.get(2), 100);
    }
}
