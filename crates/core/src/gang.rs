//! Gang scheduling of multiple parallel jobs inside the BCS-MPI engine.
//!
//! §5.4 of the paper, first remedy for blocking-heavy applications: "The
//! simplest option is to schedule a different parallel job whenever the
//! application blocks for communication, thus making use of the CPU. This
//! addresses the problem without requiring any code modification."
//!
//! With [`GangConfig`] set, the world's ranks are partitioned into jobs that
//! share the compute nodes. The Node Manager gives the CPUs of a node to
//! one job per time slice; at every slice boundary it keeps the incumbent
//! if any of its local ranks still has compute to run, and otherwise
//! switches to the next job that does (paying a context-switch cost).
//! Because all communication is performed by the NIC threads, a job's
//! in-flight communication keeps progressing even while it is descheduled —
//! exactly the property that makes the paper's remedy free.
//!
//! Computation becomes slice-granular on shared nodes: a rank's `compute()`
//! advances only during slices in which its job holds the node.

use simcore::SimDuration;

/// Partition of the world's ranks into gang-scheduled jobs.
#[derive(Clone, Debug)]
pub struct GangConfig {
    /// World ranks of each job. Must partition `0..ranks`.
    pub jobs: Vec<Vec<usize>>,
    /// CPU cost of a job switch on a node, deducted from the slice.
    pub switch_cost: SimDuration,
}

impl GangConfig {
    /// Split the world into `k` jobs round-robin (job = rank % k).
    pub fn round_robin(ranks: usize, k: usize) -> GangConfig {
        assert!(k >= 1);
        let mut jobs = vec![Vec::new(); k];
        for r in 0..ranks {
            jobs[r % k].push(r);
        }
        GangConfig {
            jobs,
            switch_cost: SimDuration::micros(25),
        }
    }

    /// Validate and return `job_of[rank]`.
    pub(crate) fn job_of(&self, ranks: usize) -> Vec<usize> {
        let mut job_of = vec![usize::MAX; ranks];
        for (j, members) in self.jobs.iter().enumerate() {
            for &r in members {
                assert!(r < ranks, "gang job rank {r} out of range");
                assert_eq!(job_of[r], usize::MAX, "rank {r} in two gang jobs");
                job_of[r] = j;
            }
        }
        assert!(
            job_of.iter().all(|&j| j != usize::MAX),
            "gang jobs must partition the world's ranks"
        );
        job_of
    }
}

/// Per-rank compute in progress (gang mode only).
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingCompute {
    /// CPU nanoseconds still owed.
    pub remaining: u64,
}

/// Per-engine gang-scheduling state.
#[derive(Clone)]
pub(crate) struct GangState {
    pub cfg: GangConfig,
    pub job_of: Vec<usize>,
    /// Job currently holding each node's CPUs.
    pub active: Vec<usize>,
    /// Outstanding compute per rank.
    pub computing: Vec<Option<PendingCompute>>,
    /// Context switches performed (stat).
    pub switches: u64,
}

impl GangState {
    pub fn new(cfg: GangConfig, ranks: usize, nodes: usize) -> GangState {
        let job_of = cfg.job_of(ranks);
        GangState {
            cfg,
            job_of,
            active: vec![0; nodes],
            computing: (0..ranks).map(|_| None).collect(),
            switches: 0,
        }
    }

    /// Number of jobs.
    pub fn njobs(&self) -> usize {
        self.cfg.jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_partitions() {
        let g = GangConfig::round_robin(10, 3);
        assert_eq!(g.jobs[0], vec![0, 3, 6, 9]);
        assert_eq!(g.jobs[1], vec![1, 4, 7]);
        assert_eq!(g.jobs[2], vec![2, 5, 8]);
        let job_of = g.job_of(10);
        assert_eq!(job_of[4], 1);
        assert_eq!(job_of[9], 0);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn incomplete_partition_panics() {
        let g = GangConfig {
            jobs: vec![vec![0, 1]],
            switch_cost: SimDuration::ZERO,
        };
        g.job_of(3);
    }

    #[test]
    #[should_panic(expected = "in two gang jobs")]
    fn overlapping_jobs_panic() {
        let g = GangConfig {
            jobs: vec![vec![0, 1], vec![1, 2]],
            switch_cost: SimDuration::ZERO,
        };
        g.job_of(3);
    }
}
