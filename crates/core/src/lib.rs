#![forbid(unsafe_code)]
//! # bcs-mpi — Buffered CoScheduled MPI
//!
//! The paper's primary contribution: an MPI implementation that optimizes the
//! *global* communication pattern of the machine instead of the
//! point-to-point latency of a single message pair.
//!
//! Time is divided into **time slices** (500 µs by default). Communication
//! primitives invoked by application processes during slice `i-1` only post
//! *descriptors* into NIC memory; at the start of slice `i` the runtime
//! globally exchanges and schedules them, then performs every scheduled
//! operation before the slice ends — all on the (simulated) network
//! interface, fully overlapped with host computation. A blocking primitive
//! suspends its caller, which is restarted at the first slice boundary after
//! the operation completes: 1.5 slices of delay on average (paper §3.1).
//! Non-blocking primitives cost only the descriptor post.
//!
//! ## Runtime structure (paper §4.1–§4.2)
//!
//! * **SS** (Strobe Sender, on the management node) — drives the global
//!   synchronization protocol: checks with `Compare-And-Write` that every
//!   node finished the current microphase, then multicasts a *microstrobe*
//!   (`Xfer-And-Signal`) starting the next.
//! * **SR** (Strobe Receiver, per node) — wakes the local NIC threads on
//!   each microstrobe.
//! * **BS / BR** (Buffer Sender / Receiver) — exchange send descriptors
//!   during the *descriptor exchange microphase* (DEM) and match them
//!   against receive descriptors in the *message scheduling microphase*
//!   (MSM), splitting messages that exceed the per-slice bandwidth budget
//!   into chunks.
//! * **DH** (DMA Helper) — performs the scheduled one-sided gets in the
//!   *point-to-point microphase*.
//! * **CH** (Collective Helper) — broadcasts and barriers in the
//!   *broadcast & barrier microphase*.
//! * **RH** (Reduce Helper) — reduce/allreduce in the *reduce microphase*,
//!   computed **on the NIC** with the `softfloat` IEEE library because the
//!   Elan3 has no FPU.
//!
//! Every mechanism is built on the three `bcs-core` primitives, exactly as
//! the paper prescribes; the fabric-level transport is the simulated QsNet.

pub mod checkpoint;
mod coll;
mod engine;
pub mod gang;
pub mod match_index;
mod p2p;
mod protocol;
pub mod schedule;
pub mod trace;

pub use checkpoint::{CheckpointImage, CommCheckpoint};
pub use engine::{BcsConfig, BcsMpi, BcsStats, FailureInfo};
pub use gang::GangConfig;
pub use protocol::resume_from_boundary;
pub use trace::SliceRecord;

/// Global-word addresses used by the protocol (same "virtual address" on
/// every node, per the BCS global-data model). Words 16+ are allocated to
/// per-communicator collective flags by [`coll`]'s `flag_word`.
pub(crate) mod words {
    /// Monotone count of microphases this node has completed.
    pub const MP_DONE: u32 = 1;
    /// Word ids below this belong to the protocol; collective flag words
    /// (`coll::flag_word`) start here.
    pub const RESERVED: u32 = 16;
}
