//! Per-slice activity tracing.
//!
//! §1 of the paper: "the communication state of all processes is known at
//! the beginning of every time slice, \[which\] facilitates the implementation
//! of checkpointing and debugging mechanisms." This module is the debugging
//! half: with `BcsConfig::trace_slices` enabled, the engine records one
//! [`SliceRecord`] per time slice — what was exchanged, matched, moved and
//! who was restarted — producing a complete, replayable activity timeline
//! of the machine.

use simcore::SimTime;

/// Activity summary of one time slice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SliceRecord {
    pub slice: u64,
    /// When the slice strobe fired.
    pub started_at: SimTime,
    /// Send descriptors exchanged in this slice's DEM.
    pub descriptors: u64,
    /// New matches made in this slice's MSM.
    pub matches: u64,
    /// Chunks transferred in this slice's P2P microphase.
    pub chunks: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Barriers + broadcasts + reduces executed this slice.
    pub collectives: u64,
    /// Processes the NM restarted at this slice's start.
    pub restarts: usize,
}

impl SliceRecord {
    /// True when the slice carried no application activity at all.
    pub fn is_idle(&self) -> bool {
        self.descriptors == 0
            && self.matches == 0
            && self.chunks == 0
            && self.collectives == 0
            && self.restarts == 0
    }
}

/// Running counters snapshotted at each slice boundary to compute deltas.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct TraceCursor {
    pub descriptors: u64,
    pub matches: u64,
    pub chunks: u64,
    pub bytes: u64,
    pub collectives: u64,
}

/// Render a compact textual timeline (active slices only) — the "global
/// debugger view" the paper's determinism makes possible.
pub fn render_timeline(records: &[SliceRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>7}  {:>12}  {:>6}  {:>7}  {:>6}  {:>10}  {:>5}  {:>8}",
        "slice", "t", "descs", "matches", "chunks", "bytes", "colls", "restarts"
    );
    for r in records.iter().filter(|r| !r.is_idle()) {
        let _ = writeln!(
            out,
            "{:>7}  {:>12}  {:>6}  {:>7}  {:>6}  {:>10}  {:>5}  {:>8}",
            r.slice,
            format!("{}", r.started_at),
            r.descriptors,
            r.matches,
            r.chunks,
            r.bytes,
            r.collectives,
            r.restarts
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_detection() {
        let mut r = SliceRecord {
            slice: 3,
            started_at: SimTime(1_500_000),
            descriptors: 0,
            matches: 0,
            chunks: 0,
            bytes: 0,
            collectives: 0,
            restarts: 0,
        };
        assert!(r.is_idle());
        r.chunks = 1;
        assert!(!r.is_idle());
    }

    #[test]
    fn timeline_renders_active_slices_only() {
        let records = vec![
            SliceRecord {
                slice: 0,
                started_at: SimTime(0),
                descriptors: 0,
                matches: 0,
                chunks: 0,
                bytes: 0,
                collectives: 0,
                restarts: 0,
            },
            SliceRecord {
                slice: 1,
                started_at: SimTime(500_000),
                descriptors: 4,
                matches: 4,
                chunks: 4,
                bytes: 16384,
                collectives: 1,
                restarts: 2,
            },
        ];
        let s = render_timeline(&records);
        assert!(s.contains("16384"));
        assert_eq!(s.lines().count(), 2, "header + one active slice");
    }
}
