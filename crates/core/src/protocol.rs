//! The global synchronization protocol (§4.2, Figure 5).
//!
//! The Strobe Sender on the management node divides time into slices and
//! each slice into five microphases:
//!
//! ```text
//! | DEM | MSM |      P2P      |  BBM  |  RM  |
//! |  global msg scheduling    |  transmission |
//! ```
//!
//! Transitions are driven by the SS: it checks with `Compare-And-Write`
//! that every compute node's `MP_DONE` word (a monotone count of completed
//! microphases) has reached the target, re-polling at `poll_interval`, and
//! then multicasts the next *microstrobe* with `Xfer-And-Signal`; the Strobe
//! Receiver on each node wakes the NIC threads of the new microphase.
//!
//! Suspended application processes are restarted by the Node Manager at the
//! slice boundary (`restart_queue`), which is what produces the paper's
//! 1.5-slice average blocking delay.

use crate::engine::{BW, BcsMpi};
use crate::words;
use bcs_core::{BcsCluster, CmpOp, XsOpts};
use mpi_api::runtime::drain;
use qsnet::NodeId;
use simcore::{Sim, SimTime};
use std::rc::Rc;

/// Number of microphases per slice.
pub(crate) const PHASES: u32 = 5;

/// Start the SS loop: the first slice begins once the runtime is up
/// (`init_delay` after t = 0; zero by default).
pub(crate) fn start_strobe_loop(w: &mut BW, sim: &mut Sim<BW>) {
    let at = SimTime::ZERO + w.engine.cfg.init_delay;
    sim.schedule_at(at, |w: &mut BW, sim| {
        slice_start(w, sim, 0);
        drain(w, sim);
    });
}

/// Begin slice `slice` at the current instant: restart suspended processes,
/// reset budgets, and strobe the DEM.
fn slice_start(w: &mut BW, sim: &mut Sim<BW>, slice: u64) {
    {
        let e = &mut w.engine;
        e.slice = slice;
        e.phase = 0;
        e.slice_started_at = sim.now();
        e.stats.slices += 1;
        let budget = e.cfg.p2p_budget;
        e.src_budget.refill(budget);
        e.dst_budget.refill(budget);
    }
    // Debug trace (§1): close out the previous slice's activity record.
    if w.engine.cfg.trace_slices && slice > 0 {
        let e = &mut w.engine;
        let s = &e.stats;
        let c = e.trace_cursor;
        e.trace.push(crate::trace::SliceRecord {
            slice: slice - 1,
            started_at: e.slice_started_at,
            descriptors: s.descriptors_exchanged - c.descriptors,
            matches: s.matches - c.matches,
            chunks: s.chunks - c.chunks,
            bytes: s.p2p_bytes - c.bytes,
            collectives: (s.barriers + s.bcasts + s.reduces) - c.collectives,
            restarts: e.restart_queue.len(),
        });
        e.trace_cursor = crate::trace::TraceCursor {
            descriptors: s.descriptors_exchanged,
            matches: s.matches,
            chunks: s.chunks,
            bytes: s.p2p_bytes,
            collectives: s.barriers + s.bcasts + s.reduces,
        };
    }

    // Fault-tolerance hook (§6): the protocol is quiescent at the boundary,
    // so the global communication state has a well-defined snapshot.
    let mut ckpt_cost = simcore::SimDuration::ZERO;
    if let Some(k) = w.engine.cfg.checkpoint_every {
        if k > 0 && slice % k == 0 {
            let digest = w.engine.checkpoint_digest();
            w.engine.checkpoints.push((slice, digest));
            if w.engine.cfg.checkpoint_images {
                let img = crate::checkpoint::capture_image(w, sim.now(), digest);
                w.engine.images.push(img);
            }
            // Compiled schedules are not part of the image; drop them at
            // every capture so a run restored from this boundary (cold
            // detectors) and the original run relearn from the same point.
            for d in &mut w.engine.sched_detect {
                d.invalidate();
            }
            ckpt_cost = w.engine.cfg.checkpoint_cost;
        }
    }

    // Serializing the checkpoint costs NM/NIC time; the DEM strobe (and the
    // restarts) wait for it, so checkpointing overhead shows up as ordinary
    // slice overrun pressure.
    if ckpt_cost.as_nanos() > 0 {
        sim.schedule_in(ckpt_cost, move |w: &mut BW, sim| {
            boundary_resume(w, sim, slice);
            drain(w, sim);
        });
    } else {
        boundary_resume(w, sim, slice);
    }
}

/// The post-checkpoint tail of a slice boundary: gang decisions, NM
/// restarts, and the DEM strobe.
fn boundary_resume(w: &mut BW, sim: &mut Sim<BW>, slice: u64) {
    // Gang scheduling (§5.4): pick each node's job for this slice and
    // advance pending computes, before restarts (freshly restarted ranks
    // compute under the decision just made).
    if w.engine.gang.is_some() {
        gang_on_boundary(w, sim);
    }

    // NM: restart every process whose blocking operation completed during
    // the previous slice — "restarted at the beginning of the time slice".
    for (rank, resp) in std::mem::take(&mut w.engine.restart_queue) {
        w.resume(rank, resp);
    }

    strobe_phase(w, sim, slice, 0);
}

/// Restart the protocol after an engine restore: runs the slice boundary's
/// post-checkpoint tail (gang decision, NM restarts, DEM strobe) for the
/// engine's current slice. Intended as the `kickoff` of
/// `mpi_api::runtime::resume_job`, scheduled at the image's capture
/// instant; the checkpoint hook is deliberately skipped — the boundary was
/// already captured, and re-capturing would duplicate the image.
pub fn resume_from_boundary(w: &mut BW, sim: &mut Sim<BW>) {
    let slice = w.engine.slice;
    boundary_resume(w, sim, slice);
}

/// SS: multicast the microstrobe for `phase`; SRs start the phase's NIC
/// threads on delivery.
fn strobe_phase(w: &mut BW, sim: &mut Sim<BW>, slice: u64, phase: u32) {
    w.engine.phase = phase;
    let mgmt = w.engine.mgmt;
    let job_nodes = w.engine.job_nodes();
    let desc = w.engine.cfg.desc_bytes;
    let per_dest: Rc<dyn Fn(&mut BW, &mut Sim<BW>, NodeId)> =
        Rc::new(move |w: &mut BW, sim: &mut Sim<BW>, node: NodeId| {
            on_microstrobe(w, sim, slice, phase, node);
            drain(w, sim);
        });
    BcsCluster::xfer_and_signal(
        w,
        sim,
        mgmt,
        &job_nodes,
        desc,
        XsOpts {
            remote_event: None,
            local_event: None,
            on_deliver: Some(per_dest),
        },
    );
    // First completion check after one poll interval.
    let poll = w.engine.cfg.poll_interval;
    sim.schedule_in(poll, move |w: &mut BW, sim| {
        poll_phase_done(w, sim, slice, phase);
        drain(w, sim);
    });
}

/// SR: a microstrobe arrived at `node` — wake the NIC threads of `phase`.
fn on_microstrobe(w: &mut BW, sim: &mut Sim<BW>, slice: u64, phase: u32, node: NodeId) {
    debug_assert_eq!(w.engine.slice, slice);
    match phase {
        0 => {
            // Slice strobe: the BS snapshots its input FIFO — every send
            // descriptor present when the strobe arrives is exchanged in
            // this slice's DEM (descriptors posted by processes the NM just
            // restarted therefore make the current slice, like in the real
            // runtime).
            debug_assert!(w.engine.nic[node.0].send_exchanging.is_empty());
            if !w.engine.nic[node.0].send_posted.is_empty() {
                let nic = std::sync::Arc::make_mut(&mut w.engine.nic[node.0]);
                nic.send_exchanging = std::mem::take(&mut nic.send_posted);
            }
            crate::p2p::node_begin_dem(w, sim, node);
        }
        1 => crate::p2p::node_begin_msm(w, sim, node),
        2 => crate::p2p::node_begin_p2p(w, sim, node),
        3 => crate::coll::node_begin_bbm(w, sim, node),
        4 => crate::coll::node_begin_rm(w, sim, node),
        _ => unreachable!("phase {phase}"),
    }
}

/// One of a node's outstanding work items for the current microphase
/// finished; when the count reaches zero the node reports completion via
/// its `MP_DONE` global word (read by the SS's `Compare-And-Write`).
pub(crate) fn work_item_done(w: &mut BW, sim: &mut Sim<BW>, node: NodeId) {
    let _ = sim;
    let e = &mut w.engine;
    let outstanding = &mut e.outstanding[node.0];
    debug_assert!(*outstanding > 0, "work_item_done underflow on {node}");
    *outstanding -= 1;
    if *outstanding == 0 {
        let target = (e.slice * PHASES as u64 + e.phase as u64 + 1) as i64;
        e.bcs.set_word(node, words::MP_DONE, target);
    }
}

/// SS: check whether all nodes completed the current microphase; if so,
/// strobe the next one (or start the next slice), otherwise re-poll.
fn poll_phase_done(w: &mut BW, sim: &mut Sim<BW>, slice: u64, phase: u32) {
    if w.engine.slice != slice || w.engine.phase != phase {
        return; // stale poll
    }
    let target = (slice * PHASES as u64 + phase as u64 + 1) as i64;
    let mgmt = w.engine.mgmt;
    let job_nodes = w.engine.job_nodes();
    BcsCluster::compare_and_write(
        w,
        sim,
        mgmt,
        &job_nodes,
        words::MP_DONE,
        CmpOp::Ge,
        target,
        None,
        move |w: &mut BW, sim: &mut Sim<BW>, ok| {
            if w.engine.slice != slice || w.engine.phase != phase {
                return;
            }
            if ok {
                advance_phase(w, sim, slice, phase);
            } else {
                let poll = w.engine.cfg.poll_interval;
                sim.schedule_in(poll, move |w: &mut BW, sim| {
                    poll_phase_done(w, sim, slice, phase);
                    drain(w, sim);
                });
            }
            drain(w, sim);
        },
    );
}

fn advance_phase(w: &mut BW, sim: &mut Sim<BW>, slice: u64, phase: u32) {
    // detlint: allow(D04, D11) — debug-trace gate only: toggles eprintln
    // logging on stderr and can never alter simulation state or CSV outputs,
    // so callers of this path stay determinism-clean (D11 taint neutralized).
    if std::env::var_os("BCS_TRACE_PHASES").is_some() {
        eprintln!(
            "slice {slice} phase {phase} done at {} (started {})",
            sim.now(),
            w.engine.slice_started_at
        );
    }
    if phase + 1 < PHASES {
        strobe_phase(w, sim, slice, phase + 1);
        return;
    }
    // Slice complete: next slice starts at the nominal boundary, or
    // immediately if the work overran it (drift).
    let ts = w.engine.cfg.timeslice;
    let nominal = SimTime(w.engine.cfg.init_delay.as_nanos() + (slice + 1) * ts.as_nanos());
    let at = if sim.now() > nominal {
        w.engine.stats.overruns += 1;
        sim.now()
    } else {
        nominal
    };
    sim.schedule_at(at, move |w: &mut BW, sim| {
        slice_start(w, sim, slice + 1);
        drain(w, sim);
    });
}

impl BcsMpi {
    /// Nominal start time of the next slice (used by tests).
    pub fn next_slice_boundary(&self, now: SimTime) -> SimTime {
        now.round_up(self.cfg.timeslice)
    }

    /// Strictly-later nominal boundary after `now` (origin-aware).
    pub(crate) fn strict_next_boundary(&self, now: SimTime) -> SimTime {
        let origin = self.cfg.init_delay.as_nanos();
        let ts = self.cfg.timeslice.as_nanos().max(1);
        let rel = now.as_nanos().saturating_sub(origin);
        SimTime(origin + (rel / ts + 1) * ts)
    }

    /// Gang context switches performed so far (0 without gang mode).
    pub fn gang_switches(&self) -> u64 {
        self.gang.as_ref().map_or(0, |g| g.switches)
    }
}

/// Gang mode: handle a `Compute` call. If the caller's job currently holds
/// its node, it computes until the next boundary (possibly finishing
/// mid-slice); the residue is carried by `gang_on_boundary`.
pub(crate) fn gang_compute(w: &mut BW, sim: &mut Sim<BW>, rank: usize, ns: u64) {
    use mpi_api::call::MpiResp;
    use mpi_api::runtime::resume_at;
    let now = sim.now().max(SimTime::ZERO + w.engine.cfg.init_delay);
    let boundary = w.engine.strict_next_boundary(now);
    let node = w.engine.node_of(rank).0;
    let g = w.engine.gang.as_mut().expect("gang_compute without gang mode");
    let job = g.job_of[rank];
    let remaining = if g.active[node] == job {
        let window = boundary.since(now).as_nanos();
        if ns <= window {
            resume_at(w, sim, now + simcore::SimDuration::nanos(ns), rank, MpiResp::Ok);
            return;
        }
        ns - window
    } else {
        ns
    };
    g.computing[rank] = Some(crate::gang::PendingCompute { remaining });
}

/// At each slice boundary: give every node's CPUs to a runnable job
/// (keeping the incumbent when it still has work) and advance the computes
/// of the ranks whose job holds their node.
fn gang_on_boundary(w: &mut BW, sim: &mut Sim<BW>) {
    use mpi_api::call::MpiResp;
    use mpi_api::runtime::resume_at;
    let now = sim.now();
    let ts = w.engine.cfg.timeslice.as_nanos();
    let nodes = w.engine.layout.compute_nodes;
    let ranks = w.engine.layout.ranks;
    let layout = w.engine.layout.clone();

    // A job is runnable on a node if one of its local ranks has pending
    // compute or is about to be restarted at this boundary.
    let restarting: std::collections::HashSet<usize> = w
        .engine
        .restart_queue
        .iter()
        .map(|&(r, _)| r)
        .collect();
    let mut switched = vec![false; nodes];
    {
        let g = w.engine.gang.as_mut().unwrap();
        for node in 0..nodes {
            let runnable = |job: usize, g: &crate::gang::GangState| {
                layout.ranks_on(qsnet::NodeId(node)).any(|r| {
                    g.job_of[r] == job
                        && (g.computing[r].is_some() || restarting.contains(&r))
                })
            };
            let cur = g.active[node];
            if !runnable(cur, g) {
                let njobs = g.njobs();
                if let Some(j) =
                    (1..njobs).map(|k| (cur + k) % njobs).find(|&j| runnable(j, g))
                {
                    g.active[node] = j;
                    g.switches += 1;
                    switched[node] = true;
                }
            }
            // detlint: allow(D04, D11) — debug-trace gate only: toggles
            // eprintln logging on stderr; simulation state is untouched either
            // way, so callers stay determinism-clean (D11 taint neutralized).
            if node == 0 && std::env::var_os("BCS_TRACE_GANG").is_some() {
                eprintln!(
                    "t={} node0 active={} (was {cur})",
                    now, g.active[node]
                );
            }
        }
    }
    // Advance the computes of active-job ranks over this slice.
    let mut resumes: Vec<(usize, u64)> = Vec::new();
    {
        let g = w.engine.gang.as_mut().unwrap();
        let switch_ns = g.cfg.switch_cost.as_nanos();
        for rank in 0..ranks {
            let Some(pc) = g.computing[rank] else { continue };
            let node = layout.node_of(rank).0;
            if g.active[node] != g.job_of[rank] {
                continue;
            }
            let window = ts.saturating_sub(if switched[node] { switch_ns } else { 0 });
            if pc.remaining <= window {
                let offset = pc.remaining + if switched[node] { switch_ns } else { 0 };
                resumes.push((rank, offset));
                g.computing[rank] = None;
            } else {
                g.computing[rank] = Some(crate::gang::PendingCompute {
                    remaining: pc.remaining - window,
                });
            }
        }
    }
    for (rank, offset) in resumes {
        resume_at(w, sim, now + simcore::SimDuration::nanos(offset), rank, MpiResp::Ok);
    }
}
