//! Engine state and the [`Engine`] implementation (application-facing side).
//!
//! Application processes interact with BCS-MPI only by posting descriptors
//! (cheap — a write into a shared-memory FIFO, no system call, §4.5) and by
//! being suspended/restarted by the Node Manager at slice boundaries. All
//! real work happens in the NIC-thread state machines of `protocol.rs`,
//! `p2p.rs` and `coll.rs`.

use crate::coll::{CollKind, CollState};
use crate::p2p::{MsgId, NicState};
use bcs_core::BcsCluster;
use mpi_api::call::{MpiCall, MpiResp, ReqId};
use mpi_api::comm::{CommId, CommRegistry};
use mpi_api::message::{SrcSel, Status, TagSel};
use mpi_api::noise::{NoiseConfig, NoiseModel};
use mpi_api::payload::Payload;
use mpi_api::runtime::{ClusterWorld, Engine, JobLayout, resume_at};
use qsnet::{FabricKind, NetModel, NodeId};
use simcore::stats::LogHistogram;
use simcore::{Sim, SimDuration, SimTime};
use std::collections::HashMap;

pub(crate) type BW = ClusterWorld<BcsMpi>;

/// Tuning knobs of BCS-MPI.
#[derive(Clone, Debug)]
pub struct BcsConfig {
    pub net: NetModel,
    /// Which interconnect implementation carries the wire traffic: QsNet
    /// (hardware multicast + network conditionals) or the RDMA channel
    /// (`rdmanet`, software emulations of both). The protocol layers above
    /// never branch on this.
    pub fabric: FabricKind,
    /// The global time slice (500 µs in all the paper's experiments).
    pub timeslice: SimDuration,
    /// Interval at which the SS re-polls `Compare-And-Write` for microphase
    /// completion.
    pub poll_interval: SimDuration,
    /// Wire size of one descriptor / microstrobe.
    pub desc_bytes: u64,
    /// NIC-thread cost to process one descriptor (post, exchange, match).
    pub desc_cost: SimDuration,
    /// Cost of posting a descriptor from the application (shared-memory
    /// FIFO write, no syscall — §4.5).
    pub post_cost: SimDuration,
    /// Per-link byte budget for the point-to-point microphase of one slice;
    /// larger messages are chunked across slices (§4.3).
    pub p2p_budget: u64,
    /// NIC-side reduce arithmetic cost per byte (softfloat — slower than
    /// host FP, but saves the PCI crossing; §4.4).
    // detlint: allow(D06) — cost-model config field, not reduce data: only
    // ever multiplied once and truncated to integer nanoseconds, which is
    // bit-identical on every IEEE-754 host.
    pub reduce_ns_per_byte: f64,
    /// Optional scheduling noise of the user-level NM dæmon (§4.5).
    pub noise: Option<NoiseConfig>,
    /// One-time cost of bringing up the BCS-MPI runtime (STORM job launch,
    /// NIC thread setup): the first slice starts only after this delay. The
    /// paper attributes IS's slowdown to exactly this overhead (§5.3).
    pub init_delay: SimDuration,
    /// Capture a communication-state checkpoint digest every `k` slices
    /// (the §6 transparent-fault-tolerance hook). `None` disables.
    pub checkpoint_every: Option<u64>,
    /// Additionally capture a full *restorable* [`crate::CheckpointImage`]
    /// at every checkpoint boundary (requires response recording on the
    /// runtime — see `ClusterWorld::set_recording`). Digest-only
    /// checkpoints stay cheap; images are what recovery restores from.
    pub checkpoint_images: bool,
    /// NM/NIC time charged at each checkpoint boundary before the DEM
    /// strobe (serializing the image). Zero keeps checkpointing free, which
    /// preserves the timing of every non-checkpointed experiment.
    pub checkpoint_cost: SimDuration,
    /// Wrap data-channel DMAs (DEM descriptor puts, P2P chunk gets) in the
    /// reliable-delivery protocol of [`bcs_core::retry`]: timeout at the
    /// expected delivery instant, exponential backoff, bounded re-issues.
    /// `None` (the default) issues raw DMAs — QsNet is lossless in
    /// hardware, so retries only matter under fault injection.
    pub retry: Option<bcs_core::retry::RetryPolicy>,
    /// Record a per-slice activity [`crate::trace::SliceRecord`] (the §1
    /// "debugging mechanisms" claim made concrete).
    pub trace_slices: bool,
    /// Gang-schedule multiple jobs on the shared nodes (§5.4 remedy 1).
    /// `None` = single dedicated job (the default, and the paper's primary
    /// configuration).
    pub gang: Option<crate::gang::GangConfig>,
    /// Persistent-schedule compilation (ROADMAP item 3): fingerprint each
    /// slice's MSM input and, after `detect_after` identical slices, record
    /// the matching pass into a replayable schedule. Replay is observably
    /// bit-identical to the indexed path (see [`crate::schedule`]), so this
    /// defaults to *on*; `None` disables the detector entirely.
    pub sched_compile: Option<crate::schedule::SchedCompileCfg>,
    /// Small-message coalescing (see [`bcs_core::coalesce`]): pack many
    /// small same-destination DEM descriptors / P2P chunks into one DMA
    /// with a scatter header. Changes the modeled wire traffic, so it
    /// defaults to *off*; experiments opt in.
    pub coalesce: Option<bcs_core::coalesce::CoalesceCfg>,
    /// Which wire schedule the CH/RH use for collectives (see
    /// [`mpi_api::coll_sched`]): the fabric's native multicast (the paper's
    /// path and the default), a binomial tree of point-to-point DMAs, or
    /// the pipelined round-schedule. Value-plane results are bit-identical
    /// across all three; only the modeled wire traffic changes. Overridable
    /// per run with `REPRO_COLL` (see `apps::runner`).
    pub coll_algo: mpi_api::coll_sched::CollAlgo,
    /// Run allreduce as an explicit reduce + broadcast composition: the RM
    /// gathers to the root, then a synthetic broadcast round executes in
    /// the *next* slice's BBM, instead of the native RH result multicast
    /// within the reduce microphase. Defaults to *off* (the paper's RH).
    pub allreduce_composite: bool,
}

impl Default for BcsConfig {
    fn default() -> Self {
        let net = NetModel::qsnet();
        // ~60% of the slice is available to the transmission phase.
        let timeslice = SimDuration::micros(500);
        // detlint: allow(D06) — config-time constant: two IEEE-754
        // multiplies truncated to an integer budget, identical on every
        // host; no per-message protocol arithmetic happens in floats.
        let p2p_budget = (0.6 * timeslice.as_secs_f64() * net.link_bw) as u64;
        BcsConfig {
            net,
            fabric: FabricKind::QsNet,
            timeslice,
            poll_interval: SimDuration::micros(25),
            desc_bytes: 64,
            desc_cost: SimDuration::nanos(900),
            post_cost: SimDuration::nanos(500),
            p2p_budget,
            // detlint: allow(D06) — config-time constant (see field docs).
            reduce_ns_per_byte: 20.0,
            noise: None,
            init_delay: SimDuration::ZERO,
            checkpoint_every: None,
            checkpoint_images: false,
            checkpoint_cost: SimDuration::ZERO,
            retry: None,
            trace_slices: false,
            gang: None,
            sched_compile: Some(crate::schedule::SchedCompileCfg::default()),
            coalesce: None,
            coll_algo: mpi_api::coll_sched::CollAlgo::HwMulticast,
            allreduce_composite: false,
        }
    }
}

impl BcsConfig {
    /// Same configuration with a different time slice (for the slice-length
    /// ablation).
    pub fn with_timeslice(mut self, ts: SimDuration) -> BcsConfig {
        self.timeslice = ts;
        // detlint: allow(D06) — config-time constant, same derivation (and
        // justification) as the `Default` impl above.
        self.p2p_budget = (0.6 * ts.as_secs_f64() * self.net.link_bw) as u64;
        self
    }
}

/// Protocol counters and delay measurements.
#[derive(Clone, Debug, Default)]
pub struct BcsStats {
    pub slices: u64,
    pub descriptors_exchanged: u64,
    pub matches: u64,
    pub chunks: u64,
    pub chunked_messages: u64,
    pub p2p_bytes: u64,
    pub barriers: u64,
    pub bcasts: u64,
    pub reduces: u64,
    pub allgathers: u64,
    /// Slices whose work overran the nominal boundary (drift events).
    pub overruns: u64,
    /// Coalesced DEM descriptor blocks issued, and the descriptors they
    /// carried (zero unless `cfg.coalesce`).
    pub dem_blocks: u64,
    pub dem_block_msgs: u64,
    /// Coalesced P2P gather blocks issued, and the chunks they carried.
    pub p2p_gathers: u64,
    pub p2p_gather_msgs: u64,
    /// Post-to-restart delay of blocking point-to-point primitives,
    /// in ns — the paper's "1.5 time slices on average" (§3.1).
    pub blocking_delay: LogHistogram,
}

/// A declared node failure: who, when, and what noticed it.
#[derive(Clone, Debug)]
pub struct FailureInfo {
    /// The fabric node declared dead.
    pub node: NodeId,
    /// Virtual time of the declaration.
    pub at: SimTime,
    /// Human-readable detector ("heartbeat", "transfer abort", ...).
    pub reason: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ReqKind {
    Send,
    Recv,
}

#[derive(Clone)]
pub(crate) struct BcsReq {
    pub owner: usize,
    pub kind: ReqKind,
    pub complete: bool,
    pub data: Option<Payload>,
    pub status: Option<Status>,
    /// Slice-boundary time at which the descriptor was posted (for the
    /// blocking-delay statistic).
    pub posted_at: SimTime,
}

/// What a rank is blocked on (the NM suspended it).
#[derive(Clone)]
pub(crate) enum Blocked {
    /// Blocking send: respond `Ok`.
    SendDone(ReqId),
    /// Blocking recv / MPI_Wait: respond `WaitDone`.
    WaitOne(ReqId),
    /// MPI_Waitall.
    WaitAll(Vec<ReqId>),
    /// Blocking probe (completed by the matcher).
    Probe { src: SrcSel, tag: TagSel },
    /// Blocking collective; completion handled by `coll.rs`.
    Collective,
}

/// The BCS-MPI engine: one management node (SS) + per-node NIC state.
pub struct BcsMpi {
    pub cfg: BcsConfig,
    pub(crate) layout: JobLayout,
    pub(crate) bcs: BcsCluster<BW>,
    /// The management node hosting the MM/SS (last fabric node).
    pub(crate) mgmt: NodeId,
    /// Per-node NIC state, shared copy-on-write with checkpoint images: a
    /// capture clones the `Arc`s; a node's state is deep-copied only on its
    /// first mutation afterwards.
    pub(crate) nic: Vec<std::sync::Arc<NicState>>,
    /// Outstanding async work items of the current microphase, per node
    /// (protocol transient — zero at every slice boundary).
    pub(crate) outstanding: Vec<u32>,
    /// Chunks scheduled for this slice's P2P microphase, per node:
    /// `(msg, bytes)` (protocol transient — empty at every boundary).
    pub(crate) sched: Vec<Vec<(MsgId, u64)>>,
    /// Current slice number and microphase (0=DEM..4=RM).
    pub(crate) slice: u64,
    pub(crate) phase: u32,
    pub(crate) slice_started_at: SimTime,
    /// Ranks to restart at the next slice boundary, with their responses.
    pub(crate) restart_queue: Vec<(usize, MpiResp)>,
    pub(crate) reqs: HashMap<ReqId, BcsReq>,
    pub(crate) payloads: HashMap<MsgId, Payload>,
    pub(crate) blocked: Vec<Option<Blocked>>,
    pub(crate) coll: CollState,
    pub(crate) comms: CommRegistry,
    /// Per-node remaining P2P byte budget for the current slice
    /// (generation-stamped: a slice boundary refills all nodes in O(1)).
    pub(crate) src_budget: crate::match_index::LazyBudget,
    pub(crate) dst_budget: crate::match_index::LazyBudget,
    /// Per-node schedule-compilation detectors (`cfg.sched_compile`).
    /// Deliberately outside `nic` and never checkpointed: learned state is
    /// a pure optimization, dropped at every checkpoint boundary, and a
    /// restored engine starts cold (see [`crate::schedule`]).
    pub(crate) sched_detect: Vec<crate::schedule::Detector>,
    pub(crate) noise: Option<NoiseModel>,
    pub stats: BcsStats,
    /// `(slice, digest)` stream captured by the checkpoint hook.
    pub checkpoints: Vec<(u64, u64)>,
    /// Full restorable images (when `cfg.checkpoint_images`).
    pub images: Vec<crate::checkpoint::CheckpointImage>,
    /// Set when the machine declared a node failure (heartbeat detection or
    /// a data-channel transfer abort); [`Engine::halted`] reports it so the
    /// run driver stops instead of spinning on a stalled protocol.
    pub failed: Option<FailureInfo>,
    /// Per-slice activity records (when `cfg.trace_slices`).
    pub trace: Vec<crate::trace::SliceRecord>,
    pub(crate) trace_cursor: crate::trace::TraceCursor,
    pub(crate) gang: Option<crate::gang::GangState>,
    pub(crate) next_req: u64,
    pub(crate) next_msg: u64,
}

impl bcs_core::BcsHost<BW> for BcsMpi {
    fn bcs_cluster(&mut self) -> &mut BcsCluster<BW> {
        &mut self.bcs
    }
}

impl BcsMpi {
    pub fn new(cfg: BcsConfig, layout: &JobLayout) -> BcsMpi {
        // One extra fabric port for the management node.
        let fabric = rdmanet::build_fabric(cfg.fabric, cfg.net, layout.compute_nodes + 1);
        let mgmt = NodeId(layout.compute_nodes);
        let noise = cfg
            .noise
            .clone()
            .map(|nc| NoiseModel::new(nc, layout.compute_nodes));
        BcsMpi {
            bcs: BcsCluster::new(fabric),
            mgmt,
            nic: (0..layout.compute_nodes)
                .map(|_| std::sync::Arc::new(NicState::default()))
                .collect(),
            outstanding: vec![0; layout.compute_nodes],
            sched: (0..layout.compute_nodes).map(|_| Vec::new()).collect(),
            slice: 0,
            phase: 0,
            slice_started_at: SimTime::ZERO,
            restart_queue: Vec::new(),
            reqs: HashMap::new(),
            payloads: HashMap::new(),
            blocked: (0..layout.ranks).map(|_| None).collect(),
            coll: CollState::new(layout),
            comms: CommRegistry::new(layout.ranks),
            src_budget: crate::match_index::LazyBudget::new(layout.compute_nodes),
            dst_budget: crate::match_index::LazyBudget::new(layout.compute_nodes),
            sched_detect: (0..layout.compute_nodes)
                .map(|_| crate::schedule::Detector::default())
                .collect(),
            noise,
            stats: BcsStats::default(),
            checkpoints: Vec::new(),
            images: Vec::new(),
            failed: None,
            trace: Vec::new(),
            trace_cursor: crate::trace::TraceCursor::default(),
            gang: cfg
                .gang
                .clone()
                .map(|g| crate::gang::GangState::new(g, layout.ranks, layout.compute_nodes)),
            next_req: 0,
            next_msg: 0,
            cfg,
            layout: layout.clone(),
        }
    }

    /// Fabric-level transfer counters (bytes, drops, dead-node skips) — the
    /// wire-side evidence fault experiments assert against.
    pub fn fabric_stats(&self) -> &qsnet::FabricStats {
        self.bcs.fabric.stats()
    }

    /// Reliable-delivery counters (retries issued, transfers aborted).
    pub fn retry_stats(&self) -> &bcs_core::retry::RetryState {
        &self.bcs.retry
    }

    /// Schedule-compilation counters, aggregated over all NICs. Kept out of
    /// [`BcsStats`] on purpose: a restored engine starts with cold
    /// detectors, so these are the one place an original and a recovered
    /// run legitimately differ.
    pub fn sched_stats(&self) -> crate::schedule::DetectorStats {
        let mut agg = crate::schedule::DetectorStats::default();
        for d in &self.sched_detect {
            agg.add(&d.stats);
        }
        agg
    }

    pub(crate) fn alloc_req(&mut self, owner: usize, kind: ReqKind, now: SimTime) -> ReqId {
        let id = ReqId(self.next_req);
        self.next_req += 1;
        self.reqs.insert(
            id,
            BcsReq {
                owner,
                kind,
                complete: false,
                data: None,
                status: None,
                posted_at: now,
            },
        );
        id
    }

    pub(crate) fn alloc_msg(&mut self) -> MsgId {
        let id = MsgId(self.next_msg);
        self.next_msg += 1;
        id
    }

    #[inline]
    pub(crate) fn node_of(&self, rank: usize) -> NodeId {
        self.layout.node_of(rank)
    }

    /// All compute nodes used by the job (the SS strobes exactly these).
    pub(crate) fn job_nodes(&self) -> Vec<NodeId> {
        (0..self.layout.nodes_used()).map(NodeId).collect()
    }

    /// Distinct compute nodes hosting members of `comm`, in node order.
    pub(crate) fn member_nodes(&self, comm: CommId) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .comms
            .members(comm)
            .iter()
            .map(|&r| self.layout.node_of(r))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Number of `comm` members hosted on `node`.
    pub(crate) fn local_members(&self, comm: CommId, node: NodeId) -> usize {
        self.layout
            .ranks_on(node)
            .filter(|r| self.comms.members(comm).contains(r))
            .count()
    }

    // ------------------------------------------------------------------
    // Request completion & NM restarts
    // ------------------------------------------------------------------

    /// Mark `req` complete. If its owner is blocked on it, queue the owner
    /// for restart at the next slice boundary (the NM restarts suspended
    /// processes only at slice starts, §3.1).
    pub(crate) fn complete_req(w: &mut BW, sim: &mut Sim<BW>, req: ReqId) {
        let owner = {
            let st = w.engine.reqs.get_mut(&req).expect("request vanished");
            st.complete = true;
            st.owner
        };
        Self::check_blocked(w, sim, owner);
    }

    /// If `rank`'s blocked condition is now satisfied, queue its restart.
    pub(crate) fn check_blocked(w: &mut BW, sim: &mut Sim<BW>, rank: usize) {
        let e = &mut w.engine;
        let Some(blocked) = e.blocked[rank].take() else {
            return;
        };
        let now = sim.now();
        match blocked {
            Blocked::SendDone(r) => {
                if e.reqs.get(&r).is_some_and(|s| s.complete) {
                    let st = e.reqs.remove(&r).unwrap();
                    e.stats
                        .blocking_delay
                        .record(now.since(st.posted_at) + e.half_slice_to_boundary(now));
                    e.restart_queue.push((rank, MpiResp::Ok));
                } else {
                    e.blocked[rank] = Some(Blocked::SendDone(r));
                }
            }
            Blocked::WaitOne(r) => {
                if e.reqs.get(&r).is_some_and(|s| s.complete) {
                    let st = e.reqs.remove(&r).unwrap();
                    if st.kind == ReqKind::Recv {
                        e.stats
                            .blocking_delay
                            .record(now.since(st.posted_at) + e.half_slice_to_boundary(now));
                    }
                    e.restart_queue.push((
                        rank,
                        MpiResp::WaitDone {
                            data: st.data,
                            status: st.status,
                        },
                    ));
                } else {
                    e.blocked[rank] = Some(Blocked::WaitOne(r));
                }
            }
            Blocked::WaitAll(rs) => {
                if rs.iter().all(|r| e.reqs.get(r).is_some_and(|s| s.complete)) {
                    let results = rs
                        .iter()
                        .map(|r| {
                            let st = e.reqs.remove(r).unwrap();
                            (st.data, st.status)
                        })
                        .collect();
                    e.restart_queue.push((rank, MpiResp::WaitallDone { results }));
                } else {
                    e.blocked[rank] = Some(Blocked::WaitAll(rs));
                }
            }
            other @ (Blocked::Probe { .. } | Blocked::Collective) => {
                // Resolved elsewhere (matcher / collective completion).
                e.blocked[rank] = Some(other);
            }
        }
    }

    /// Residual time from `now` to the next nominal slice boundary — added
    /// to the blocking-delay statistic because the restart actually happens
    /// there.
    fn half_slice_to_boundary(&self, now: SimTime) -> SimDuration {
        let origin = self.cfg.init_delay.as_nanos();
        let rel = now.as_nanos().saturating_sub(origin);
        let ts = self.cfg.timeslice.as_nanos();
        let next = origin + rel.div_ceil(ts.max(1)) * ts;
        SimDuration::nanos(next.saturating_sub(now.as_nanos()))
    }

    /// Immediately complete a `Wait` whose request already finished (the
    /// §3.2 non-blocking fast path: "verify that the communication has been
    /// performed and continue").
    fn wait_fast_path(w: &mut BW, sim: &mut Sim<BW>, rank: usize, req: ReqId) -> bool {
        if w.engine.reqs.get(&req).is_some_and(|s| s.complete) {
            let st = w.engine.reqs.remove(&req).unwrap();
            let at = sim.now() + w.engine.cfg.post_cost;
            resume_at(
                w,
                sim,
                at,
                rank,
                MpiResp::WaitDone {
                    data: st.data,
                    status: st.status,
                },
            );
            true
        } else {
            false
        }
    }
}

impl Engine for BcsMpi {
    fn bootstrap(w: &mut BW, sim: &mut Sim<BW>) {
        crate::protocol::start_strobe_loop(w, sim);
    }

    fn halted(w: &BW) -> bool {
        w.engine.failed.is_some()
    }

    fn on_call(w: &mut BW, sim: &mut Sim<BW>, rank: usize, call: MpiCall) {
        let post = w.engine.cfg.post_cost;
        match call {
            MpiCall::Compute { ns } => {
                if w.engine.gang.is_some() {
                    // Gang mode: compute advances only while this rank's job
                    // holds the node (noise not modelled here).
                    crate::protocol::gang_compute(w, sim, rank, ns);
                    return;
                }
                let mut d = SimDuration::nanos(ns);
                let node = w.engine.node_of(rank).0;
                // Processes cannot run before the runtime is up (MPI_Init
                // returns only once the NM has scheduled them).
                let start = sim.now().max(SimTime::ZERO + w.engine.cfg.init_delay);
                if let Some(noise) = &mut w.engine.noise {
                    d = noise.inflate(node, start, d);
                }
                resume_at(w, sim, start + d, rank, MpiResp::Ok);
            }
            MpiCall::Now => {
                w.resume(rank, MpiResp::Time(sim.now().as_nanos()));
            }
            MpiCall::Send {
                dest,
                tag,
                data,
                blocking,
            } => crate::p2p::post_send(w, sim, rank, dest, tag, data, blocking),
            MpiCall::Recv { src, tag, blocking } => {
                crate::p2p::post_recv(w, sim, rank, src, tag, blocking)
            }
            MpiCall::Wait { req } => {
                if !Self::wait_fast_path(w, sim, rank, req) {
                    w.engine.blocked[rank] = Some(Blocked::WaitOne(req));
                }
            }
            MpiCall::Waitall { reqs } => {
                let mut seen = std::collections::HashSet::new();
                assert!(
                    reqs.iter().all(|r| seen.insert(*r)),
                    "duplicate requests in waitall"
                );
                let all_done = reqs
                    .iter()
                    .all(|r| w.engine.reqs.get(r).is_some_and(|s| s.complete));
                if all_done {
                    let results = reqs
                        .iter()
                        .map(|r| {
                            let st = w.engine.reqs.remove(r).unwrap();
                            (st.data, st.status)
                        })
                        .collect();
                    resume_at(
                        w,
                        sim,
                        sim.now() + post,
                        rank,
                        MpiResp::WaitallDone { results },
                    );
                } else {
                    w.engine.blocked[rank] = Some(Blocked::WaitAll(reqs));
                }
            }
            MpiCall::Test { req } => {
                let done = w.engine.reqs.get(&req).is_some_and(|s| s.complete);
                let result = if done {
                    let st = w.engine.reqs.remove(&req).unwrap();
                    Some((st.data, st.status))
                } else {
                    None
                };
                w.resume(rank, MpiResp::TestDone { result });
            }
            MpiCall::Testall { reqs } => {
                let all = reqs
                    .iter()
                    .all(|r| w.engine.reqs.get(r).is_some_and(|s| s.complete));
                let results = if all {
                    Some(
                        reqs.iter()
                            .map(|r| {
                                let st = w.engine.reqs.remove(r).unwrap();
                                (st.data, st.status)
                            })
                            .collect(),
                    )
                } else {
                    None
                };
                w.resume(rank, MpiResp::TestallDone { results });
            }
            MpiCall::Probe { src, tag, blocking } => {
                crate::p2p::probe(w, sim, rank, src, tag, blocking)
            }
            MpiCall::Barrier { comm } => crate::coll::post_collective(
                w,
                sim,
                rank,
                comm,
                CollKind::Barrier,
                0,
                None,
                None,
            ),
            MpiCall::Bcast { comm, root, data } => crate::coll::post_collective(
                w,
                sim,
                rank,
                comm,
                CollKind::Bcast,
                root,
                data,
                None,
            ),
            MpiCall::Reduce {
                comm,
                root,
                op,
                dtype,
                data,
                all,
            } => crate::coll::post_collective(
                w,
                sim,
                rank,
                comm,
                CollKind::Reduce { all },
                root,
                Some(data),
                Some((op, dtype)),
            ),
            MpiCall::Allgatherv { comm, data } => crate::coll::post_collective(
                w,
                sim,
                rank,
                comm,
                CollKind::Allgather,
                0,
                Some(data),
                None,
            ),
            MpiCall::CommSplit { parent, color, key } => {
                // A collective: everyone blocks; once the last member
                // arrives, the membership agreement is complete and all
                // participants restart at the next slice boundary (the NM
                // treats it like any other collective completion).
                w.engine.blocked[rank] = Some(Blocked::Collective);
                if let Some(outcome) = w.engine.comms.arrive_split(parent, rank, color, key) {
                    for (r, handle) in outcome.assignments {
                        w.engine.blocked[r] = None;
                        w.engine
                            .restart_queue
                            .push((r, MpiResp::CommSplitDone { handle }));
                    }
                }
            }
            MpiCall::Batch { .. } => {
                unreachable!("MpiCall::Batch is unpacked by the runtime, never seen by engines")
            }
        }
    }

    fn describe_pending(&self) -> String {
        let mut out = format!(
            "  slice {} phase {} started at {}\n",
            self.slice, self.phase, self.slice_started_at
        );
        if let Some(f) = &self.failed {
            out.push_str(&format!(
                "  FAILED: node {} declared dead at {} ({})\n",
                f.node, f.at, f.reason
            ));
        }
        for (r, b) in self.blocked.iter().enumerate() {
            let what = match b {
                None => continue,
                Some(Blocked::SendDone(q)) => format!("blocking send {q:?}"),
                Some(Blocked::WaitOne(q)) => format!("wait {q:?}"),
                Some(Blocked::WaitAll(qs)) => format!("waitall {} reqs", qs.len()),
                Some(Blocked::Probe { src, tag }) => format!("probe {src:?}/{tag:?}"),
                Some(Blocked::Collective) => "collective".to_string(),
            };
            out.push_str(&format!("  rank {r}: {what}\n"));
        }
        for (n, nic) in self.nic.iter().enumerate() {
            let s = nic.describe();
            if !s.is_empty() {
                out.push_str(&format!("  node {n}: {s}\n"));
            }
        }
        out.push_str(&self.coll.describe());
        out
    }
}
