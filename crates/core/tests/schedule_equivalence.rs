//! Schedule compilation must be *observably transparent* (DESIGN.md §13):
//! for arbitrary repeated/perturbed slice patterns, an engine with
//! `sched_compile` on must produce bit-identical results, virtual timings,
//! protocol counters and checkpoint digests to one with it off — on both
//! fabrics. The generated workloads deliberately straddle the compiler's
//! eligibility line: zero-byte messages, wildcard receives, tag sequences
//! that repeat (compilable streaks) and drift (invalidations), and message
//! counts that fit or overflow the per-slice P2P budget (chunking refusals).
//!
//! The Quadrics reference engine pins down *what* the results should be
//! (checksums must agree engine-to-engine); the compiled/uncompiled BCS
//! comparison pins down that replay changes *nothing at all*. Coalescing is
//! exercised separately: it legitimately moves virtual time (fewer, larger
//! wire transactions) but must preserve results and stay deterministic.

use bcs_mpi::{BcsConfig, BcsMpi};
use mpi_api::message::{SrcSel, TagSel};
use mpi_api::runtime::{JobLayout, RunResult, run_job};
use proplite::prelude::*;
use qsnet::FabricKind;
use simcore::SimDuration;

/// One generated slice-pattern workload on a ring: every rank exchanges
/// `mpp` messages with each of `neighbors` neighbours per iteration;
/// iteration `it` posts with tag `tags[it]`, so a constant run of tags is a
/// compilable streak and every tag change perturbs the fingerprint. An
/// iteration in `wild` posts its receives with a source wildcard (still
/// compilable — selector shape is part of the fingerprint).
#[derive(Clone, Debug)]
struct Pattern {
    n: usize,
    neighbors: usize,
    mpp: usize,
    msg_bytes: usize,
    tags: Vec<i32>,
    wild: Vec<bool>,
}

fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    (
        2..5usize,
        1..3usize,
        1..4usize,
        // Zero-byte messages complete in MSM and make the pattern
        // uncompilable; 4096B at mpp=3 can overflow a slice budget and
        // force chunking refusals. Both must still be transparent.
        prop_oneof![Just(0usize), Just(24), Just(96), Just(4096)],
        prop::collection::vec(0..3i32, 3..9),
        prop::collection::vec(any::<bool>(), 9..10),
    )
        .prop_map(|(n, nb, mpp, msg_bytes, tags, wild)| Pattern {
            n,
            neighbors: nb.min(n - 1),
            mpp,
            msg_bytes,
            tags,
            wild,
        })
}

/// The workload itself, blocking-handle form (`run_job`): compute, shower
/// every ring neighbour, absorb everything received into a checksum.
fn run_pattern(cfg: BcsConfig, p: &Pattern) -> RunResult<u64, BcsMpi> {
    let layout = JobLayout::new(p.n, 1, p.n);
    let p = p.clone();
    run_job(BcsMpi::new(cfg, &layout), layout, move |mpi| {
        let me = mpi.rank();
        let n = mpi.size();
        let mut peers = Vec::new();
        for o in 1..=p.neighbors {
            peers.push((me + o) % n);
        }
        let mut checksum = 0u64;
        for (it, &tag) in p.tags.iter().enumerate() {
            mpi.compute(SimDuration::micros(150));
            let payload: Vec<u8> =
                (0..p.msg_bytes).map(|i| (me + it + i) as u8).collect();
            let mut reqs = Vec::new();
            for &peer in &peers {
                for _ in 0..p.mpp {
                    reqs.push(mpi.isend(peer, tag, &payload));
                }
            }
            let sends = reqs.len();
            let wild = p.wild[it % p.wild.len()];
            for o in 1..=p.neighbors {
                let from = (me + n - o) % n;
                let src = if wild { SrcSel::Any } else { SrcSel::Rank(from) };
                for _ in 0..p.mpp {
                    reqs.push(mpi.irecv(src, TagSel::Tag(tag)));
                }
            }
            for (data, status) in &mpi.waitall(&reqs)[sends..] {
                let data = data.as_ref().expect("recv payload");
                let status = status.as_ref().expect("recv status");
                assert_eq!(data.len(), p.msg_bytes);
                // Order-insensitive fold: wildcard receives may match in
                // engine-specific order, so each message contributes a
                // commutative term.
                checksum = checksum.wrapping_add(
                    (1 + status.source as u64)
                        .wrapping_mul(31)
                        .wrapping_add(data.iter().map(|&b| b as u64).sum::<u64>()),
                );
            }
        }
        checksum
    })
}

fn cfg_with(fabric: FabricKind, compile: bool, coalesce: bool) -> BcsConfig {
    let mut cfg = BcsConfig::default();
    cfg.fabric = fabric;
    cfg.sched_compile = if compile { Some(Default::default()) } else { None };
    cfg.coalesce = if coalesce { Some(Default::default()) } else { None };
    // Checkpoint every few slices so the digest log actually samples the
    // mid-run protocol state the replay path touches.
    cfg.checkpoint_every = Some(3);
    cfg
}

/// Everything an observer could compare between two runs: per-rank results,
/// virtual elapsed time, event count, the slice-stamped checkpoint digest
/// log, and the full protocol counter block (Debug form covers every field,
/// histograms included).
fn observables(out: &RunResult<u64, BcsMpi>) -> (Vec<u64>, u128, u64, Vec<(u64, u64)>, String) {
    (
        out.results.clone(),
        out.elapsed.as_nanos() as u128,
        out.events,
        out.engine.checkpoints.clone(),
        format!("{:?}", out.engine.stats),
    )
}

proplite! {
    #![config(cases = 24)]

    #[test]
    fn compiled_replay_is_bit_transparent_on_both_fabrics(p in pattern_strategy()) {
        for fabric in [FabricKind::QsNet, FabricKind::Rdma] {
            let base = run_pattern(cfg_with(fabric, false, false), &p);
            let comp = run_pattern(cfg_with(fabric, true, false), &p);
            prop_assert_eq!(
                observables(&base),
                observables(&comp),
                "sched_compile changed observable behavior ({:?}, {:?})",
                fabric,
                &p
            );
        }
    }

    #[test]
    fn coalescing_preserves_results_and_is_deterministic(p in pattern_strategy()) {
        for fabric in [FabricKind::QsNet, FabricKind::Rdma] {
            let plain = run_pattern(cfg_with(fabric, true, false), &p);
            let coal = run_pattern(cfg_with(fabric, true, true), &p);
            // Coalescing repacks wire traffic, so virtual time may move —
            // but what every rank computes must not.
            prop_assert_eq!(&plain.results, &coal.results,
                "coalescing changed results ({:?}, {:?})", fabric, &p);
            // And it must be exactly reproducible run-to-run.
            let again = run_pattern(cfg_with(fabric, true, true), &p);
            prop_assert_eq!(
                observables(&coal),
                observables(&again),
                "coalesced run is nondeterministic ({:?})",
                fabric
            );
        }
    }

    #[test]
    fn checksums_agree_with_the_quadrics_reference_engine(p in pattern_strategy()) {
        // Independent oracle for *what* the checksums should be: the
        // Quadrics engine shares no slice/schedule machinery with BCS.
        let layout = JobLayout::new(p.n, 1, p.n);
        let q = {
            let p = p.clone();
            run_job(
                quadrics_mpi::QuadricsMpi::new(quadrics_mpi::QuadricsConfig::default(), &layout),
                layout,
                move |mpi| {
                    let me = mpi.rank();
                    let n = mpi.size();
                    let mut peers = Vec::new();
                    for o in 1..=p.neighbors {
                        peers.push((me + o) % n);
                    }
                    let mut checksum = 0u64;
                    for (it, &tag) in p.tags.iter().enumerate() {
                        mpi.compute(SimDuration::micros(150));
                        let payload: Vec<u8> =
                            (0..p.msg_bytes).map(|i| (me + it + i) as u8).collect();
                        let mut reqs = Vec::new();
                        for &peer in &peers {
                            for _ in 0..p.mpp {
                                reqs.push(mpi.isend(peer, tag, &payload));
                            }
                        }
                        let sends = reqs.len();
                        let wild = p.wild[it % p.wild.len()];
                        for o in 1..=p.neighbors {
                            let from = (me + n - o) % n;
                            let src =
                                if wild { SrcSel::Any } else { SrcSel::Rank(from) };
                            for _ in 0..p.mpp {
                                reqs.push(mpi.irecv(src, TagSel::Tag(tag)));
                            }
                        }
                        for (data, status) in &mpi.waitall(&reqs)[sends..] {
                            let data = data.as_ref().expect("recv payload");
                            let status = status.as_ref().expect("recv status");
                            assert_eq!(data.len(), p.msg_bytes);
                            checksum = checksum.wrapping_add(
                                (1 + status.source as u64)
                                    .wrapping_mul(31)
                                    .wrapping_add(
                                        data.iter().map(|&b| b as u64).sum::<u64>(),
                                    ),
                            );
                        }
                    }
                    checksum
                },
            )
        };
        let b = run_pattern(cfg_with(FabricKind::QsNet, true, false), &p);
        prop_assert_eq!(&q.results, &b.results,
            "engines disagree on checksums ({:?})", &p);
    }
}
