//! End-to-end tests of BCS-MPI: the signature behaviors of buffered
//! coscheduling — slice-quantized blocking delay, full overlap of
//! non-blocking communication, chunking of large messages, NIC-level
//! collectives, and determinism.

use bcs_mpi::{BcsConfig, BcsMpi};
use mpi_api::datatype::ReduceOp;
use mpi_api::message::{SrcSel, TagSel};
use mpi_api::runtime::{JobLayout, run_job};
use simcore::SimDuration;

fn engine(layout: &JobLayout) -> BcsMpi {
    BcsMpi::new(BcsConfig::default(), layout)
}

const SLICE_US: f64 = 500.0;

#[test]
fn blocking_pingpong_costs_slices_not_microseconds() {
    // The heart of the paper's §3.1: a blocking primitive suspends until the
    // first slice boundary after the transfer completes — 1.5 slices mean.
    let layout = JobLayout::new(2, 1, 2);
    let out = run_job(engine(&layout), layout, |mpi| {
        let iters = 20u64;
        let t0 = mpi.now();
        for _ in 0..iters {
            if mpi.rank() == 0 {
                mpi.send(1, 7, &[0u8; 8]);
                mpi.recv_from(1, 8);
            } else {
                mpi.recv_from(0, 7);
                mpi.send(0, 8, &[0u8; 8]);
            }
        }
        mpi.now().since(t0).as_micros_f64() / iters as f64
    });
    let per_iter = out.results[0];
    // Each iteration = one send + one recv, each at least 1 full slice of
    // quantization; both legs of an iteration complete within 2-4 slices.
    assert!(
        (2.0 * SLICE_US..4.5 * SLICE_US).contains(&per_iter),
        "blocking ping-pong iteration {per_iter:.0}us, expected 2-4.5 slices"
    );
}

#[test]
fn blocking_delay_averages_about_1_5_slices() {
    // Post blocking sends at uniformly distributed offsets inside slices:
    // the measured post-to-restart delay must average ~1.5 slices (§3.1).
    let layout = JobLayout::new(2, 1, 2);
    let out = run_job(engine(&layout), layout, |mpi| {
        for i in 0..40u64 {
            // Prime-ish offsets spread posts across slice interiors.
            mpi.compute(SimDuration::micros(137 + (i * 211) % 457));
            if mpi.rank() == 0 {
                mpi.send(1, 1, &[0u8; 64]);
            } else {
                mpi.recv(SrcSel::Rank(0), TagSel::Tag(1));
            }
        }
    });
    let h = &out.engine.stats.blocking_delay;
    assert!(h.count() >= 40, "expected blocking samples, got {}", h.count());
    let mean_us = h.mean().as_micros_f64();
    assert!(
        (1.1 * SLICE_US..2.6 * SLICE_US).contains(&mean_us),
        "mean blocking delay {mean_us:.0}us, expected ~1.5-2.5 slices"
    );
}

#[test]
fn nonblocking_fully_overlaps_with_computation() {
    // §3.2: with isend/irecv posted before the compute, the exchange costs
    // (almost) nothing — communication rides the slices under the compute.
    let layout = JobLayout::new(2, 1, 2);
    let out = run_job(engine(&layout), layout, |mpi| {
        let peer = 1 - mpi.rank();
        let t0 = mpi.now();
        for _ in 0..10 {
            let s = mpi.isend(peer, 3, &[1u8; 4096]);
            let r = mpi.irecv(SrcSel::Rank(peer), TagSel::Tag(3));
            mpi.compute(SimDuration::millis(10));
            let res = mpi.waitall(&[s, r]);
            assert_eq!(res[1].0.as_ref().unwrap().len(), 4096);
        }
        mpi.now().since(t0).as_millis_f64()
    });
    for r in &out.results {
        // 100 ms of compute; overlap should keep overhead under 2%.
        assert!(
            *r < 102.0,
            "non-blocking exchange failed to overlap: {r:.2}ms for 100ms compute"
        );
    }
}

#[test]
fn large_message_is_chunked_across_slices() {
    let layout = JobLayout::new(2, 1, 2);
    let mb = 1024 * 1024usize;
    let out = run_job(engine(&layout), layout, move |mpi| {
        if mpi.rank() == 0 {
            mpi.send(1, 1, &vec![5u8; mb]);
            0.0
        } else {
            let t0 = mpi.now();
            let d = mpi.recv_from(0, 1);
            assert_eq!(d.len(), mb);
            assert!(d.iter().all(|&b| b == 5));
            mpi.now().since(t0).as_millis_f64()
        }
    });
    let st = &out.engine.stats;
    assert!(st.chunked_messages >= 1, "1 MiB must not fit one slice budget");
    assert!(
        st.chunks >= 8,
        "1 MiB over ~96 KiB/slice budget needs many chunks, got {}",
        st.chunks
    );
    // ~11 slices of payload + quantization: between 4 and 15 ms.
    assert!(
        (4.0..15.0).contains(&out.results[1]),
        "1 MiB took {:.1}ms",
        out.results[1]
    );
}

#[test]
fn barrier_and_collectives_work_at_62_ranks() {
    let layout = JobLayout::crescendo(62);
    let out = run_job(engine(&layout), layout, |mpi| {
        let me = mpi.rank();
        mpi.barrier();
        let sum = mpi.allreduce_i64(ReduceOp::Sum, &[me as i64])[0];
        let bc = mpi.bcast(5, (me == 5).then(|| vec![9u8; 256]).as_deref());
        let mx = mpi.reduce_f64(0, ReduceOp::Max, &[me as f64 * 1.5]);
        (sum, bc.len(), mx.map(|v| v[0]))
    });
    for (r, (sum, bclen, mx)) in out.results.iter().enumerate() {
        assert_eq!(*sum, 61 * 62 / 2);
        assert_eq!(*bclen, 256);
        if r == 0 {
            assert_eq!(mx.unwrap(), 61.0 * 1.5);
        } else {
            assert!(mx.is_none());
        }
    }
    let st = &out.engine.stats;
    assert_eq!(st.barriers, 1);
    assert_eq!(st.bcasts, 1);
    assert_eq!(st.reduces, 2); // allreduce + reduce
}

#[test]
fn collective_latency_is_slice_quantized() {
    // A barrier in BCS-MPI costs a couple of slices (descriptor slice +
    // scheduling + execution + restart), not microseconds.
    let layout = JobLayout::new(4, 2, 8);
    let out = run_job(engine(&layout), layout, |mpi| {
        let t0 = mpi.now();
        for _ in 0..10 {
            mpi.barrier();
        }
        mpi.now().since(t0).as_micros_f64() / 10.0
    });
    // Back-to-back barriers post right at the restart boundary, so each is
    // picked up by the very next strobe: exactly one slice in steady state.
    let per_barrier = out.results[0];
    assert!(
        (0.9 * SLICE_US..4.0 * SLICE_US).contains(&per_barrier),
        "barrier cost {per_barrier:.0}us, expected 1-4 slices"
    );
}

#[test]
fn wildcards_and_non_overtaking() {
    let layout = JobLayout::new(4, 1, 4);
    let out = run_job(engine(&layout), layout, |mpi| {
        if mpi.rank() == 0 {
            let mut from = vec![];
            for _ in 0..6 {
                let (data, st) = mpi.recv(SrcSel::Any, TagSel::Any);
                assert_eq!(data.len(), st.bytes);
                from.push((st.source, st.tag, data));
            }
            // Per-source tag order must be preserved (non-overtaking).
            for src in 1..4 {
                let tags: Vec<i32> = from
                    .iter()
                    .filter(|(s, _, _)| *s == src)
                    .map(|(_, t, _)| *t)
                    .collect();
                assert_eq!(tags, vec![10, 20], "source {src} order {tags:?}");
            }
            true
        } else {
            mpi.send(0, 10, &vec![1u8; mpi.rank()]);
            mpi.send(0, 20, &vec![2u8; mpi.rank()]);
            true
        }
    });
    assert!(out.results[0]);
}

#[test]
fn probe_sees_descriptor_before_receive() {
    let layout = JobLayout::new(2, 1, 2);
    run_job(engine(&layout), layout, |mpi| {
        if mpi.rank() == 0 {
            let st = mpi.probe(SrcSel::Rank(1), TagSel::Any);
            assert_eq!(st.tag, 77);
            assert_eq!(st.bytes, 3);
            let d = mpi.recv_from(1, 77);
            assert_eq!(d, vec![7u8; 3]);
        } else {
            mpi.send(0, 77, &[7u8; 3]);
        }
    });
}

#[test]
fn zero_byte_message() {
    let layout = JobLayout::new(2, 1, 2);
    let out = run_job(engine(&layout), layout, |mpi| {
        if mpi.rank() == 0 {
            mpi.send(1, 1, &[]);
            true
        } else {
            let (d, st) = mpi.recv(SrcSel::Rank(0), TagSel::Tag(1));
            d.is_empty() && st.bytes == 0
        }
    });
    assert!(out.results[1]);
}

#[test]
fn composed_collectives_over_bcs() {
    let layout = JobLayout::new(4, 2, 8);
    let out = run_job(engine(&layout), layout, |mpi| {
        let me = mpi.rank();
        let n = mpi.size();
        let ag = mpi.allgather(&[me as u8]);
        assert_eq!(
            ag.iter().map(|c| c[0]).collect::<Vec<u8>>(),
            (0..n as u8).collect::<Vec<u8>>()
        );
        let send: Vec<Vec<u8>> = (0..n).map(|d| vec![(me * n + d) as u8]).collect();
        let got = mpi.alltoall(&send);
        for (s, c) in got.iter().enumerate() {
            assert_eq!(c[0], (s * n + me) as u8);
        }
        true
    });
    assert!(out.results.iter().all(|&b| b));
}

#[test]
fn deterministic_replay() {
    let run = || {
        let layout = JobLayout::new(8, 2, 16);
        run_job(engine(&layout), layout, |mpi| {
            let peer = (mpi.rank() + 1) % mpi.size();
            let from = (mpi.rank() + mpi.size() - 1) % mpi.size();
            for _ in 0..4 {
                let s = mpi.isend(peer, 1, &[0u8; 2048]);
                let r = mpi.irecv(SrcSel::Rank(from), TagSel::Tag(1));
                mpi.compute(SimDuration::micros(1300));
                mpi.waitall(&[s, r]);
                mpi.allreduce_i64(ReduceOp::Sum, &[1]);
            }
            mpi.now().as_nanos()
        })
        .results
    };
    assert_eq!(run(), run());
}

#[test]
fn values_match_baseline_bitexactly() {
    // The NIC softfloat reduce must agree bit-for-bit with the baseline's
    // host-side tree.
    let contributions: Vec<f64> = (0..16)
        .map(|i| (i as f64 * 0.7371 - 3.3).exp() * if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();

    let run_bcs = {
        let c = contributions.clone();
        let layout = JobLayout::new(8, 2, 16);
        run_job(engine(&layout), layout, move |mpi| {
            mpi.allreduce_f64(ReduceOp::Sum, &[c[mpi.rank()], 1.5])
        })
        .results
    };
    let run_base = {
        let c = contributions.clone();
        let layout = JobLayout::new(8, 2, 16);
        run_job(
            quadrics_mpi::QuadricsMpi::new(quadrics_mpi::QuadricsConfig::default(), &layout),
            layout,
            move |mpi| mpi.allreduce_f64(ReduceOp::Sum, &[c[mpi.rank()], 1.5]),
        )
        .results
    };
    for (a, b) in run_bcs.iter().zip(&run_base) {
        assert_eq!(a[0].to_bits(), b[0].to_bits(), "NIC vs host reduce differ");
        assert_eq!(a[1].to_bits(), b[1].to_bits());
    }
}

#[test]
fn slice_statistics_accumulate() {
    let layout = JobLayout::new(2, 1, 2);
    let out = run_job(engine(&layout), layout, |mpi| {
        mpi.compute(SimDuration::millis(5));
        if mpi.rank() == 0 {
            mpi.send(1, 1, &[1u8; 128]);
        } else {
            mpi.recv_from(0, 1);
        }
    });
    let st = &out.engine.stats;
    assert!(st.slices >= 10, "5ms of compute = at least 10 slices");
    assert_eq!(st.descriptors_exchanged, 1);
    assert_eq!(st.matches, 1);
    assert_eq!(st.chunks, 1);
    assert_eq!(st.overruns, 0);
}

#[test]
fn slice_trace_records_activity() {
    let layout = JobLayout::new(2, 1, 2);
    let mut cfg = BcsConfig::default();
    cfg.trace_slices = true;
    let out = mpi_api::runtime::run_job(BcsMpi::new(cfg, &layout), layout, |mpi| {
        mpi.compute(SimDuration::millis(2));
        if mpi.rank() == 0 {
            mpi.send(1, 1, &[7u8; 2048]);
        } else {
            mpi.recv_from(0, 1);
        }
        mpi.barrier();
    });
    let trace = &out.engine.trace;
    assert!(!trace.is_empty());
    // Slice numbers are dense from 0.
    for (i, r) in trace.iter().enumerate() {
        assert_eq!(r.slice, i as u64);
    }
    // Exactly one exchanged descriptor and one barrier across the run.
    let descs: u64 = trace.iter().map(|r| r.descriptors).sum();
    let colls: u64 = trace.iter().map(|r| r.collectives).sum();
    let bytes: u64 = trace.iter().map(|r| r.bytes).sum();
    assert_eq!(descs, 1);
    assert_eq!(colls, 1);
    assert_eq!(bytes, 2048);
    // The timeline renders only active slices.
    let timeline = bcs_mpi::trace::render_timeline(trace);
    assert!(timeline.contains("2048"));
    assert!(timeline.lines().count() < trace.len());
}

#[test]
fn sendrecv_exchanges_without_deadlock() {
    // Every rank simultaneously sendrecvs with its ring neighbour — the
    // classic pattern that deadlocks with blocking sends but not with
    // MPI_Sendrecv.
    let layout = JobLayout::new(4, 2, 8);
    let out = run_job(engine(&layout), layout, |mpi| {
        let n = mpi.size();
        let me = mpi.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let (data, st) = mpi.sendrecv(
            right,
            5,
            &[me as u8; 16],
            SrcSel::Rank(left),
            TagSel::Tag(5),
        );
        assert_eq!(st.source, left);
        assert_eq!(data, vec![left as u8; 16]);
        true
    });
    assert!(out.results.iter().all(|&b| b));
}
