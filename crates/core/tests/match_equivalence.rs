//! The indexed matcher (`match_index::{RecvIndex, SendIndex}`) must be
//! *bit-identical* to the linear scans it replaced (`match_index::reference`)
//! — same match winners, same probe answers, same retained backlog in the
//! same order — over arbitrary interleavings of posts, arrivals, probes,
//! cancels and MSM sweeps, including the `drain_new` fast path the engine
//! takes when no receive was posted since the previous sweep.
//!
//! The reference lists are the executable specification: every operation is
//! the literal scan the BR performed before the index existed, so equality
//! here is equality with the old engine behavior (MPI non-overtaking order
//! included: two sends with the same envelope must match in arrival order,
//! which the seq-ordered comparison checks for free).

use bcs_mpi::match_index::reference::{LinearRecvList, LinearSendList};
use bcs_mpi::match_index::{RecvIndex, RecvSel, SendIndex, SendKey};
use mpi_api::message::{SrcSel, TagSel};
use proplite::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    /// Post a receive with this selector (dst, src?, tag?).
    PostRecv { dst: u8, src: Option<u8>, tag: Option<i8> },
    /// A remote send descriptor arrives (DEM push into the unmatched list).
    SendArrive { dst: u8, src: u8, tag: i8 },
    /// MPI_Probe against the unmatched sends.
    Probe { dst: u8, src: Option<u8>, tag: Option<i8> },
    /// Cancel the n-th still-posted receive (modulo live count).
    Cancel { nth: u8 },
    /// An MSM sweep: drain the unmatched backlog and match in order.
    Sweep,
}

fn op_strategy(ranks: u8, tags: i8) -> impl Strategy<Value = Op> {
    let src = prop_oneof![Just(None), (0..ranks).prop_map(Some)];
    let tag = prop_oneof![Just(None), (0..tags).prop_map(Some)];
    let src2 = prop_oneof![Just(None), (0..ranks).prop_map(Some)];
    let tag2 = prop_oneof![Just(None), (0..tags).prop_map(Some)];
    prop_oneof![
        (0..ranks, src, tag).prop_map(|(dst, src, tag)| Op::PostRecv { dst, src, tag }),
        (0..ranks, 0..ranks, 0..tags)
            .prop_map(|(dst, src, tag)| Op::SendArrive { dst, src, tag }),
        (0..ranks, src2, tag2).prop_map(|(dst, src, tag)| Op::Probe { dst, src, tag }),
        (0u8..16).prop_map(|nth| Op::Cancel { nth }),
        Just(Op::Sweep),
        // Sweeps are the hot path; weight them up so scripts exercise both
        // the drain_all and drain_new branches repeatedly.
        Just(Op::Sweep),
    ]
}

fn sel(dst: u8, src: Option<u8>, tag: Option<i8>) -> RecvSel {
    RecvSel {
        dst_rank: dst as usize,
        src: src.map_or(SrcSel::Any, |s| SrcSel::Rank(s as usize)),
        tag: tag.map_or(TagSel::Any, |t| TagSel::Tag(t as i32)),
    }
}

fn key(dst: u8, src: u8, tag: i8) -> SendKey {
    SendKey {
        dst_rank: dst as usize,
        src_rank: src as usize,
        tag: tag as i32,
    }
}

/// Run one script against both matchers in lockstep, asserting equality at
/// every observable point. Items are unique ids so "same item" is exact.
fn check_script(ops: &[Op]) -> TestResult {
    let mut idx_recv: RecvIndex<u64> = RecvIndex::new();
    let mut idx_send: SendIndex<u64> = SendIndex::new();
    let mut lin_recv: LinearRecvList<u64> = LinearRecvList::new();
    let mut lin_send: LinearSendList<u64> = LinearSendList::new();
    let mut next_recv_id = 0u64;
    let mut next_send_id = 0u64;
    // Mirrors NicState::recvs_since_msm: when clear, the engine skips the
    // already-examined backlog entirely (drain_new). The linear reference
    // always rescans everything; equality proves the skip is sound.
    let mut fresh_recvs = false;

    for op in ops {
        match *op {
            Op::PostRecv { dst, src, tag } => {
                let s = sel(dst, src, tag);
                let id = next_recv_id;
                next_recv_id += 1;
                let seq_i = idx_recv.post(s, id);
                let seq_l = lin_recv.post(s, id);
                prop_assert_eq!(seq_i, seq_l, "post seq diverged");
                fresh_recvs = true;
            }
            Op::SendArrive { dst, src, tag } => {
                let k = key(dst, src, tag);
                let id = next_send_id;
                next_send_id += 1;
                idx_send.push(k, id);
                lin_send.push(k, id);
            }
            Op::Probe { dst, src, tag } => {
                let s = src.map_or(SrcSel::Any, |s| SrcSel::Rank(s as usize));
                let t = tag.map_or(TagSel::Any, |t| TagSel::Tag(t as i32));
                let pi = idx_send.probe(dst as usize, s, t).map(|(k, id)| (*k, *id));
                let pl = lin_send.probe(dst as usize, s, t).map(|(k, id)| (*k, *id));
                prop_assert_eq!(pi, pl, "probe diverged");
            }
            Op::Cancel { nth } => {
                // Pick the nth live receive (post order); both sides must
                // agree it exists and hand back the same entry.
                let live: Vec<u64> = idx_recv.iter().map(|(seq, _, _)| seq).collect();
                if live.is_empty() {
                    continue;
                }
                let seq = live[nth as usize % live.len()];
                let ci = idx_recv.cancel(seq);
                let cl = lin_recv.cancel(seq);
                prop_assert_eq!(ci, cl, "cancel diverged");
                // A cancel only shrinks the recv set, so (like the engine)
                // it does NOT re-arm the backlog re-examination.
            }
            Op::Sweep => {
                // Indexed side: the engine's exact MSM step-2 discipline.
                let incoming_i = if fresh_recvs {
                    fresh_recvs = false;
                    idx_send.drain_all()
                } else {
                    idx_send.drain_new()
                };
                let mut matches_i = Vec::new();
                for (k, id) in incoming_i {
                    match idx_recv.match_first(&k) {
                        None => {
                            idx_send.push(k, id);
                        }
                        Some((rsel, rid)) => matches_i.push((id, rsel, rid)),
                    }
                }
                idx_send.mark_examined();
                // Reference side: rescan the whole backlog every sweep.
                let mut matches_l = Vec::new();
                for (k, id) in lin_send.drain_all() {
                    match lin_recv.match_first(&k) {
                        None => lin_send.push(k, id),
                        Some((rsel, rid)) => matches_l.push((id, rsel, rid)),
                    }
                }
                prop_assert_eq!(matches_i, matches_l, "sweep match set diverged");
            }
        }
        // Invariant after every op: both views of the world are identical.
        let ri: Vec<(u64, RecvSel, u64)> =
            idx_recv.iter().map(|(s, sel, id)| (s, *sel, *id)).collect();
        let rl: Vec<(u64, RecvSel, u64)> =
            lin_recv.iter().map(|(s, sel, id)| (s, *sel, *id)).collect();
        prop_assert_eq!(ri, rl, "posted-recv lists diverged");
        let si: Vec<(SendKey, u64)> = idx_send.iter().map(|(_, k, id)| (*k, *id)).collect();
        let sl: Vec<(SendKey, u64)> = lin_send.iter().map(|(k, id)| (*k, *id)).collect();
        prop_assert_eq!(si, sl, "unmatched-send backlogs diverged");
    }
    Ok(())
}

proplite! {
    #![config(cases = 128)]

    #[test]
    fn indexed_matcher_equals_linear_reference(
        ops in prop::collection::vec(op_strategy(4, 3), 1..120)
    ) {
        check_script(&ops)?;
    }

    #[test]
    fn dense_collisions_preserve_non_overtaking_order(
        // One destination, one tag: every send has an identical envelope, so
        // any ordering slip between the matchers is immediately visible.
        ops in prop::collection::vec(op_strategy(1, 1), 1..160)
    ) {
        check_script(&ops)?;
    }

    #[test]
    fn wildcard_heavy_streams_agree(
        ops in prop::collection::vec(op_strategy(2, 2), 1..140)
    ) {
        check_script(&ops)?;
    }
}
