//! The collective-algorithm layer must be *value-transparent* (DESIGN §14):
//! for random communicators × roots × ops × payload sizes, every
//! [`CollAlgo`] — the hardware multicast path, the explicit binomial tree,
//! and the pipelined optimal schedule — must produce bit-identical results
//! on both fabrics. The algorithms may only move the clock: the value plane
//! folds contributions in ascending communicator-rank order regardless of
//! the wire schedule, and the NIC's softfloat arithmetic makes the fold
//! exact run-to-run.
//!
//! Also pinned here: every algorithm run is deterministic end-to-end
//! (results, virtual time, event counts and checkpoint digests identical on
//! a re-run), and a node crash landing mid-collective recovers from the
//! slice-boundary checkpoint to results bit-identical to the fault-free
//! reference under each algorithm.

use bcs_mpi::{BcsConfig, BcsMpi};
use faultsim::{FaultPlan, RecoveryCfg, fault_free_reference, run_with_recovery};
use mpi_api::coll_sched::CollAlgo;
use mpi_api::runtime::{JobLayout, RunResult, run_job};
use mpi_api::{AsyncMpi, ReduceOp};
use proplite::prelude::*;
use qsnet::{FabricKind, NodeId};
use simcore::SimDuration;

/// One generated collective workload.
#[derive(Clone, Debug)]
struct Scenario {
    /// Compute nodes (== world size at one rank per node unless `ppn` > 1).
    nodes: usize,
    ppn: usize,
    root: usize,
    op: ReduceOp,
    /// f64 elements per reduce contribution.
    elems: usize,
    /// Communicator split: world plus `groups`-way sub-communicators.
    groups: usize,
    iters: usize,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        2..7usize,
        1..3usize,
        0..32usize,
        prop_oneof![
            Just(ReduceOp::Sum),
            Just(ReduceOp::Prod),
            Just(ReduceOp::Min),
            Just(ReduceOp::Max)
        ],
        // One element keeps every payload below a pipeline block; 1200
        // f64s (9600 B) forces the optimal schedule into multi-block
        // rounds on world-sized communicators.
        prop_oneof![Just(1usize), Just(13), Just(160), Just(1200)],
        1..3usize,
        1..3usize,
    )
        .prop_map(|(nodes, ppn, root, op, elems, groups, iters)| Scenario {
            nodes,
            ppn,
            root: root % (nodes * ppn),
            op,
            elems,
            groups,
            iters,
        })
}

fn layout_of(s: &Scenario) -> JobLayout {
    JobLayout::new(s.nodes, s.ppn, s.nodes * s.ppn)
}

fn cfg_with(fabric: FabricKind, algo: CollAlgo, composite: bool) -> BcsConfig {
    let mut cfg = BcsConfig::default();
    cfg.fabric = fabric;
    cfg.coll_algo = algo;
    cfg.allreduce_composite = composite;
    // Checkpoint every few slices so the digest log samples mid-collective
    // protocol state.
    cfg.checkpoint_every = Some(3);
    cfg
}

/// Every collective in one pot, folded to a per-rank checksum over the
/// exact result bits: any value divergence between algorithms changes it,
/// pure timing shifts do not.
fn run_scenario(cfg: BcsConfig, s: &Scenario) -> RunResult<u64, BcsMpi> {
    let layout = layout_of(s);
    let s = s.clone();
    run_job(BcsMpi::new(cfg, &layout), layout, move |mpi| {
        let me = mpi.rank();
        let mut acc: u64 = (me as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let sub = if s.groups > 1 {
            mpi.comm_split(None, (me % s.groups) as i64, me as i64)
        } else {
            None
        };
        for it in 0..s.iters {
            // World broadcast from the scenario root.
            let bytes: Vec<u8> = (0..s.elems)
                .map(|i| (s.root + it + i) as u8)
                .collect();
            let got = mpi.bcast(s.root, if me == s.root { Some(&bytes) } else { None });
            for b in &got {
                acc = acc.wrapping_mul(31).wrapping_add(*b as u64);
            }
            // NIC reduce + allreduce: values exercise the softfloat fold.
            let xs: Vec<f64> = (0..s.elems)
                .map(|i| (me as f64 + 1.0) * 0.37 + i as f64 + it as f64 * 0.5)
                .collect();
            if let Some(r) = mpi.reduce_f64(s.root, s.op, &xs) {
                for v in r {
                    acc ^= v.to_bits();
                }
            }
            for v in mpi.allreduce_f64(s.op, &xs) {
                acc = acc.rotate_left(7) ^ v.to_bits();
            }
            // Engine-level allgatherv with genuinely uneven contributions.
            let mine: Vec<u8> = (0..1 + (me * 7 + it) % 23)
                .map(|i| (me * 13 + i) as u8)
                .collect();
            for (src, part) in mpi.allgatherv_coll(&mine).iter().enumerate() {
                acc = acc.wrapping_add((src as u64 + 1).wrapping_mul(1 + part.len() as u64));
                for b in part {
                    acc = acc.wrapping_mul(31).wrapping_add(*b as u64);
                }
            }
            // The same collectives over a sub-communicator.
            if let Some(h) = &sub {
                mpi.barrier_on(h);
                let sb = mpi.bcast_on(h, 0, if h.rank == 0 { Some(&mine) } else { None });
                for b in &sb {
                    acc = acc.wrapping_mul(29).wrapping_add(*b as u64);
                }
                for v in mpi.allreduce_f64_on(h, s.op, &xs) {
                    acc = acc.rotate_left(3) ^ v.to_bits();
                }
                for part in mpi.allgatherv_coll_on(h, &mine) {
                    for b in part {
                        acc = acc.wrapping_mul(27).wrapping_add(b as u64);
                    }
                }
            }
            mpi.barrier();
        }
        acc
    })
}

/// Everything an observer could compare between two runs of the *same*
/// configuration.
fn observables(out: &RunResult<u64, BcsMpi>) -> (Vec<u64>, u128, u64, Vec<(u64, u64)>, String) {
    (
        out.results.clone(),
        out.elapsed.as_nanos() as u128,
        out.events,
        out.engine.checkpoints.clone(),
        format!("{:?}", out.engine.stats),
    )
}

const ALGOS: [CollAlgo; 3] = [
    CollAlgo::HwMulticast,
    CollAlgo::Binomial,
    CollAlgo::OptimalSchedule,
];

proplite! {
    #![config(cases = 16)]

    #[test]
    fn algorithms_are_value_transparent_on_both_fabrics(s in scenario_strategy()) {
        for fabric in [FabricKind::QsNet, FabricKind::Rdma] {
            let reference = run_scenario(cfg_with(fabric, CollAlgo::HwMulticast, false), &s);
            for algo in ALGOS {
                for composite in [false, true] {
                    let run = run_scenario(cfg_with(fabric, algo, composite), &s);
                    prop_assert_eq!(
                        &reference.results,
                        &run.results,
                        "{:?} (composite={}) diverged from hw-multicast on {:?}: {:?}",
                        algo, composite, fabric, &s
                    );
                }
            }
        }
    }

    #[test]
    fn every_algorithm_run_is_deterministic(s in scenario_strategy()) {
        for fabric in [FabricKind::QsNet, FabricKind::Rdma] {
            for algo in ALGOS {
                let a = run_scenario(cfg_with(fabric, algo, false), &s);
                let b = run_scenario(cfg_with(fabric, algo, false), &s);
                prop_assert_eq!(
                    observables(&a),
                    observables(&b),
                    "{:?} on {:?} is nondeterministic: {:?}",
                    algo, fabric, &s
                );
            }
        }
    }
}

/// Collective-dense async workload for the recovery runs: the crash slice
/// lands while barriers/reduces/allgathers are in flight, so the restore
/// replays mid-collective protocol state (flag words, round maps, blocked
/// ranks) from the checkpoint image.
async fn coll_program(mut mpi: AsyncMpi, iters: u64) -> u64 {
    let me = mpi.rank();
    let mut acc: u64 = (me as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for it in 0..iters {
        mpi.compute(SimDuration::micros(120 + 31 * ((me as u64 + it) % 7))).await;
        let xs = [me as f64 + it as f64 * 0.25, (acc as u32) as f64];
        for v in mpi.allreduce_f64(ReduceOp::Sum, &xs).await {
            acc ^= v.to_bits();
        }
        let root = (it as usize) % mpi.size();
        let bytes: Vec<u8> = (0..64).map(|i| (root + i) as u8).collect();
        let got = mpi
            .bcast(root, if me == root { Some(&bytes) } else { None })
            .await;
        for b in &got {
            acc = acc.wrapping_mul(31).wrapping_add(*b as u64);
        }
        let mine: Vec<u8> = (0..1 + (me + it as usize) % 9).map(|i| (me + i) as u8).collect();
        for part in mpi.allgatherv_coll(&mine).await {
            for b in part {
                acc = acc.wrapping_mul(29).wrapping_add(b as u64);
            }
        }
        mpi.barrier().await;
    }
    acc
}

#[test]
fn mid_collective_crash_recovers_bit_identically_under_every_algorithm() {
    for algo in ALGOS {
        let mut bcs = BcsConfig::default();
        bcs.coll_algo = algo;
        let rc = RecoveryCfg::new(bcs, 2);
        let layout = JobLayout::new(4, 1, 4);
        let reference = fault_free_reference(
            &rc.bcs,
            layout.clone(),
            |mpi: AsyncMpi| coll_program(mpi, 6),
            rc.opts.clone(),
        )
        .results;
        let plan = FaultPlan::single_crash(&rc.bcs, NodeId(2), 5);
        let out = run_with_recovery(&rc, layout, &plan, |mpi: AsyncMpi| coll_program(mpi, 6));
        assert!(out.completed, "{algo:?}: recovery failed: {:?}", out.abort);
        assert!(out.restarts >= 1, "{algo:?}: the crash must force a restore");
        let got: Vec<u64> = out.results.iter().map(|r| r.unwrap()).collect();
        assert_eq!(
            got, reference,
            "{algo:?}: recovered results diverged from the fault-free run"
        );
    }
}
