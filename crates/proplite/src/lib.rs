#![forbid(unsafe_code)]
//! # proplite — self-contained property testing
//!
//! A minimal, dependency-free property-testing harness with a surface
//! close enough to proptest that this repo's suites ported with small
//! diffs. Three pieces:
//!
//! * [`Source`] — a recording/replaying choice stream over the in-tree
//!   [`simcore::SimRng`], so generation is deterministic and stable
//!   across machines and toolchains.
//! * [`Strategy`] — generator combinators: integer ranges, [`any`],
//!   [`Just`], tuples, [`prop::collection::vec`], `.prop_map(...)`, and
//!   the weighted [`prop_oneof!`] union.
//! * The [`proplite!`] macro + runner — deterministic per-case seeds,
//!   greedy choice-stream shrinking on failure, and a report that prints
//!   the shrunk input *and* a `PROPLITE_SEED` value that reruns exactly
//!   the failing case.
//!
//! ```
//! use proplite::prelude::*;
//!
//! proplite! {
//!     #![config(cases = 256)]
//!     #[test]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Environment overrides: `PROPLITE_CASES` (case count), `PROPLITE_SEED`
//! (rerun one exact case), `PROPLITE_MAX_SHRINK` (shrink budget).
//!
//! [`prop::collection::vec`]: strategy::collection::vec()

mod runner;
mod source;
mod strategy;

pub use runner::{CaseError, Config, Failure, TestResult, check, run};
pub use source::Source;
pub use strategy::{
    Any, Arbitrary, BoxedStrategy, Just, Map, SizeRange, Strategy, Union, any, collection,
};

/// proptest-style module path, so suites keep `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::strategy::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        CaseError, Config, Just, Strategy, TestResult, any, prop, prop_assert, prop_assert_eq,
        prop_oneof, proplite,
    };
}

/// Define property tests. Mirrors `proptest!`:
///
/// ```ignore
/// proplite! {
///     #![config(cases = 64, max_shrink_iters = 128)]
///     #[test]
///     fn my_prop(x in 0u32..100, flips in prop::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proplite {
    (#![config($($cfg:tt)*)] $($rest:tt)*) => {
        $crate::__proplite_items!([$($cfg)*] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proplite_items!([] $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proplite_items {
    ([$($cfg:tt)*]) => {};
    ([$($cfg:tt)*]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_mut)]
            let mut cfg = $crate::Config::default();
            $crate::__proplite_config!(cfg; $($cfg)*);
            let strategy = ($($strat,)+);
            $crate::run(
                concat!(module_path!(), "::", stringify!($name)),
                &cfg,
                &strategy,
                |($($arg,)+)| -> $crate::TestResult { $body Ok(()) },
            );
        }
        $crate::__proplite_items!([$($cfg)*] $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proplite_config {
    ($cfg:ident;) => {};
    ($cfg:ident; cases = $v:expr $(, $($rest:tt)*)?) => {
        $cfg.cases = $v;
        $crate::__proplite_config!($cfg; $($($rest)*)?);
    };
    ($cfg:ident; seed = $v:expr $(, $($rest:tt)*)?) => {
        $cfg.seed = Some($v);
        $crate::__proplite_config!($cfg; $($($rest)*)?);
    };
    ($cfg:ident; max_shrink_iters = $v:expr $(, $($rest:tt)*)?) => {
        $cfg.max_shrink_iters = $v;
        $crate::__proplite_config!($cfg; $($($rest)*)?);
    };
}

/// Non-panicking assertion inside a property body: fails the case (and
/// triggers shrinking) by returning early.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::CaseError::new(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::CaseError::new(format!($($fmt)+)));
        }
    };
}

/// Non-panicking equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::CaseError::new(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::CaseError::new(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Weighted union of strategies, proptest-style:
/// `prop_oneof![s1, s2]` or `prop_oneof![4 => s1, 1 => s2]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}
