//! Choice streams: the randomness substrate strategies draw from.
//!
//! Every value a strategy generates is a deterministic function of the
//! sequence of *resolved draws* it makes from a [`Source`] — the choice
//! stream. A fresh source resolves draws from a [`SimRng`] and records
//! them; a replay source resolves them from a previously recorded stream
//! (clamping bounded draws, padding with zeros past the end). Shrinking
//! then operates purely on the recorded stream: a candidate stream is
//! replayed through the same strategy to regenerate a (simpler) value,
//! with no per-strategy shrink code at all.
//!
//! Bounded draws record the *resolved value* (the offset within the
//! bound), not the raw 64-bit output. This makes the stream monotone:
//! decreasing an entry can only decrease (or preserve) the generated
//! value, so greedy stream shrinking converges to locally minimal inputs
//! with unit granularity.

use simcore::SimRng;

/// A recording/replaying stream of choices.
pub struct Source {
    replay: Vec<u64>,
    pos: usize,
    rng: Option<SimRng>,
    record: Vec<u64>,
}

impl Source {
    /// A fresh source: draws come from `rng` and are recorded.
    pub fn fresh(rng: SimRng) -> Source {
        Source {
            replay: Vec::new(),
            pos: 0,
            rng: Some(rng),
            record: Vec::new(),
        }
    }

    /// A replay source: draws come from `stream`; once it is exhausted,
    /// every further draw resolves to zero (the simplest choice).
    pub fn replay(stream: &[u64]) -> Source {
        Source {
            replay: stream.to_vec(),
            pos: 0,
            rng: None,
            record: Vec::new(),
        }
    }

    fn next_entry(&mut self) -> Option<u64> {
        let e = if self.pos < self.replay.len() {
            Some(self.replay[self.pos])
        } else {
            None
        };
        self.pos += 1;
        e
    }

    /// An unbounded 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let v = match self.next_entry() {
            Some(e) => e,
            None => match &mut self.rng {
                Some(rng) => rng.next_u64(),
                None => 0,
            },
        };
        self.record.push(v);
        v
    }

    /// A draw uniform in `[0, bound)`. `bound` must be non-zero. The
    /// resolved value itself is recorded, so stream entries for bounded
    /// draws are directly meaningful to the shrinker.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Source::below(0)");
        let v = match self.next_entry() {
            Some(e) => e.min(bound - 1),
            None => match &mut self.rng {
                Some(rng) => rng.next_below(bound),
                None => 0,
            },
        };
        self.record.push(v);
        v
    }

    /// The sequence of resolved draws made so far.
    pub fn into_record(self) -> Vec<u64> {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaying_a_record_reproduces_the_draws() {
        let mut a = Source::fresh(SimRng::new(7));
        let drawn: Vec<u64> = vec![
            a.next_u64(),
            a.below(10),
            a.below(1_000_000),
            a.next_u64(),
        ];
        let rec = a.into_record();
        let mut b = Source::replay(&rec);
        assert_eq!(b.next_u64(), drawn[0]);
        assert_eq!(b.below(10), drawn[1]);
        assert_eq!(b.below(1_000_000), drawn[2]);
        assert_eq!(b.next_u64(), drawn[3]);
        assert_eq!(b.into_record(), rec);
    }

    #[test]
    fn replay_clamps_and_pads() {
        let mut s = Source::replay(&[500]);
        assert_eq!(s.below(10), 9, "oversized entry clamps to bound-1");
        assert_eq!(s.below(10), 0, "exhausted stream pads with zero");
        assert_eq!(s.next_u64(), 0);
    }

    #[test]
    fn bounded_draws_stay_in_bounds() {
        let mut s = Source::fresh(SimRng::new(99));
        for bound in [1u64, 2, 3, 7, 1 << 40, u64::MAX] {
            for _ in 0..100 {
                assert!(s.below(bound) < bound);
            }
        }
    }
}
