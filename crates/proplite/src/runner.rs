//! Case execution, greedy stream shrinking, and failure reporting.
//!
//! Every case is generated from a per-case seed derived deterministically
//! from the test name and case index, so a run is reproducible with no
//! state files. On failure the recorded choice stream is shrunk greedily
//! (chunk removal, then zero/halve/decrement of single entries), and the
//! report prints both the shrunk input and the reproducing seed; setting
//! `PROPLITE_SEED=<seed>` (or `Config::seed`) reruns exactly that case.

use crate::source::Source;
use crate::strategy::Strategy;
use simcore::SimRng;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-test runner configuration, set via `#![config(...)]` inside
/// [`proplite!`](crate::proplite).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases (env `PROPLITE_CASES` overrides).
    pub cases: u32,
    /// Run exactly one case from this seed (env `PROPLITE_SEED` overrides).
    pub seed: Option<u64>,
    /// Cap on test executions spent shrinking a failure
    /// (env `PROPLITE_MAX_SHRINK` overrides).
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 64,
            seed: None,
            max_shrink_iters: 512,
        }
    }
}

/// A failed (non-panicking) assertion inside a property body, produced by
/// `prop_assert!`/`prop_assert_eq!`.
#[derive(Clone, Debug)]
pub struct CaseError {
    pub message: String,
}

impl CaseError {
    pub fn new(message: impl Into<String>) -> CaseError {
        CaseError { message: message.into() }
    }
}

pub type TestResult = Result<(), CaseError>;

/// A minimized property failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    /// Seed reproducing this exact case (`PROPLITE_SEED=<seed>`).
    pub seed: u64,
    /// Index of the failing case within the run.
    pub case: u32,
    /// `Debug` rendering of the shrunk input.
    pub value: String,
    /// The assertion or panic message of the shrunk failure.
    pub message: String,
    /// Number of successful shrink adoptions.
    pub shrink_steps: u32,
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn env_u64(key: &str) -> Option<u64> {
    // detlint: allow(D04) — test-harness knob (PROPLITE_CASES / _SEED):
    // changes how many property cases run, never what the simulator emits;
    // the default run with no overrides is what CI and verify.sh exercise.
    let raw = std::env::var(key).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{key}={raw:?} is not a u64"),
    }
}

// While shrinking, the same panic fires over and over; suppress the
// default hook's per-panic spew and report only the final shrunk case.
static QUIET_DEPTH: AtomicUsize = AtomicUsize::new(0);
static HOOK_INSTALL: Once = Once::new();

fn install_quiet_hook() {
    HOOK_INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if QUIET_DEPTH.load(Ordering::Relaxed) == 0 {
                prev(info);
            }
        }));
    });
}

struct QuietGuard;

impl QuietGuard {
    fn new() -> QuietGuard {
        install_quiet_hook();
        QUIET_DEPTH.fetch_add(1, Ordering::Relaxed);
        QuietGuard
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        QUIET_DEPTH.fetch_sub(1, Ordering::Relaxed);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

enum Draws<'a> {
    Fresh(u64),
    Replay(&'a [u64]),
}

/// Generate from the given draws and execute the property once. Returns
/// the effective choice record, the input's Debug form, and the failure
/// message if the property failed (by `Err` or by panic).
fn run_once<S, F>(strat: &S, f: &F, draws: Draws<'_>) -> (Vec<u64>, String, Option<String>)
where
    S: Strategy,
    F: Fn(S::Value) -> TestResult,
{
    let mut src = match draws {
        Draws::Fresh(seed) => Source::fresh(SimRng::new(seed)),
        Draws::Replay(stream) => Source::replay(stream),
    };
    let value = strat.generate(&mut src);
    let rendered = format!("{value:?}");
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(value)));
    let message = match outcome {
        Ok(Ok(())) => None,
        Ok(Err(e)) => Some(e.message),
        Err(payload) => Some(panic_message(payload.as_ref())),
    };
    (src.into_record(), rendered, message)
}

/// Shrink candidates for a stream, simplest-first within each family:
/// chunk removals (large chunks first), then per-entry lowering — zero,
/// halve, power-of-two subtractions (largest first, so repeated greedy
/// rounds binary-search each entry down to its failure boundary), and
/// finally decrement.
fn candidates(stream: &[u64]) -> Vec<Vec<u64>> {
    let n = stream.len();
    let mut out = Vec::new();
    let mut chunk = n;
    while chunk >= 1 {
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let mut c = Vec::with_capacity(n - (end - start));
            c.extend_from_slice(&stream[..start]);
            c.extend_from_slice(&stream[end..]);
            out.push(c);
            start += chunk;
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    for (i, &v) in stream.iter().enumerate() {
        if v == 0 {
            continue;
        }
        let mut with = |nv: u64| {
            let mut c = stream.to_vec();
            c[i] = nv;
            out.push(c);
        };
        if v > 1 {
            with(0);
            with(v / 2);
        }
        let mut k = 63 - v.leading_zeros();
        while k >= 1 {
            let step = 1u64 << k;
            if step < v && v - step != v / 2 {
                with(v - step);
            }
            k -= 1;
        }
        with(v - 1);
    }
    out
}

fn shrink<S, F>(
    cfg: &Config,
    strat: &S,
    f: &F,
    seed: u64,
    case: u32,
    first: (Vec<u64>, String, String),
) -> Failure
where
    S: Strategy,
    F: Fn(S::Value) -> TestResult,
{
    let _quiet = QuietGuard::new();
    let max_runs = env_u64("PROPLITE_MAX_SHRINK")
        .map(|v| v as u32)
        .unwrap_or(cfg.max_shrink_iters);
    let (mut stream, mut value, mut message) = first;
    let mut runs = 0u32;
    let mut steps = 0u32;
    'outer: while runs < max_runs {
        for cand in candidates(&stream) {
            if runs >= max_runs {
                break 'outer;
            }
            runs += 1;
            let (rec, rendered, outcome) = run_once(strat, f, Draws::Replay(&cand));
            if let Some(msg) = outcome {
                if rec != stream {
                    stream = rec;
                    value = rendered;
                    message = msg;
                    steps += 1;
                    continue 'outer;
                }
            }
        }
        break;
    }
    Failure { seed, case, value, message, shrink_steps: steps }
}

/// Run the property over all configured cases; on failure, shrink it and
/// return the minimized [`Failure`] instead of panicking. `run` is the
/// panicking wrapper the `proplite!` macro uses; `check` exists so the
/// crate's own tests can assert on reported failures.
pub fn check<S, F>(name: &str, cfg: &Config, strat: &S, f: &F) -> Option<Failure>
where
    S: Strategy,
    F: Fn(S::Value) -> TestResult,
{
    let forced = env_u64("PROPLITE_SEED").or(cfg.seed);
    let cases = match forced {
        Some(_) => 1,
        None => env_u64("PROPLITE_CASES").map(|v| v as u32).unwrap_or(cfg.cases),
    };
    let run_seed = mix(fnv1a(name), 0xB0C5_0001);
    for case in 0..cases {
        let seed = forced.unwrap_or_else(|| mix(run_seed, case as u64 + 1));
        let (record, rendered, outcome) = run_once(strat, f, Draws::Fresh(seed));
        if let Some(message) = outcome {
            return Some(shrink(cfg, strat, f, seed, case, (record, rendered, message)));
        }
    }
    None
}

/// Macro entry point: run the property, panicking with a report — shrunk
/// input plus reproducing seed — if it fails.
pub fn run<S, F>(name: &str, cfg: &Config, strat: &S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestResult,
{
    if let Some(fail) = check(name, cfg, strat, &f) {
        panic!(
            "[proplite] property {name} failed at case {}\n  \
             shrunk input ({} shrink steps): {}\n  \
             failure: {}\n  \
             reproduce: PROPLITE_SEED={:#018x} (or Config {{ seed: Some(...) }})",
            fail.case, fail.shrink_steps, fail.value, fail.message, fail.seed,
        );
    }
}
