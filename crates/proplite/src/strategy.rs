//! Strategies: composable value generators over a choice [`Source`].
//!
//! The combinator surface deliberately mirrors proptest's so the existing
//! property suites port with minimal diffs: integer ranges are strategies
//! (`0usize..5000`), `any::<T>()`, `Just(v)`, tuples of strategies,
//! `collection::vec(elem, size)`, `.prop_map(f)`, and the weighted
//! `prop_oneof!` union (built on [`Union`]).

use crate::source::Source;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of values of type `Self::Value` from a choice stream.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, src: &mut Source) -> Self::Value;

    /// Transform generated values. Shrinking happens on the underlying
    /// choice stream, so mapped strategies shrink through the map for free.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, map: f }
    }

    /// Type-erase, e.g. to mix differently-shaped arms in a [`Union`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, src: &mut Source) -> Self::Value {
        (**self).generate(src)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, src: &mut Source) -> Self::Value {
        (**self).generate(src)
    }
}

// ---------------------------------------------------------------- ranges

macro_rules! unsigned_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, src: &mut Source) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + src.below(span) as $t
            }
        }
    )+};
}
unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, src: &mut Source) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + src.below(span) as i128) as $t
            }
        }
    )+};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

// ------------------------------------------------------------------- any

/// Types with a canonical full-domain strategy, via [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    fn arbitrary(src: &mut Source) -> Self;
}

pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        T::arbitrary(src)
    }
}

impl Arbitrary for bool {
    fn arbitrary(src: &mut Source) -> bool {
        src.below(2) == 1
    }
}

// Small integers draw through `below` so the recorded entry *is* the
// value and shrinks with unit granularity toward zero.
macro_rules! arbitrary_small_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(src: &mut Source) -> $t {
                src.below(1u64 << <$t>::BITS) as $t
            }
        }
    )+};
}
arbitrary_small_uint!(u8, u16, u32);

macro_rules! arbitrary_wide_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(src: &mut Source) -> $t {
                src.next_u64() as $t
            }
        }
    )+};
}
arbitrary_wide_int!(u64, usize, i64, isize);

macro_rules! arbitrary_small_int {
    ($($t:ty => $u:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(src: &mut Source) -> $t {
                src.below(1u64 << <$t>::BITS) as $u as $t
            }
        }
    )+};
}
arbitrary_small_int!(i8 => u8, i16 => u16, i32 => u32);

// ------------------------------------------------------------------ just

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _src: &mut Source) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($($s:ident . $i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, src: &mut Source) -> Self::Value {
                ($(self.$i.generate(src),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// ------------------------------------------------------------------- map

pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        (self.map)(self.source.generate(src))
    }
}

// ----------------------------------------------------------------- union

/// Weighted choice among same-typed strategies; backs [`prop_oneof!`].
/// The first arm is the "simplest": the arm selector shrinks toward it.
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: fmt::Debug> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! with no arms");
        assert!(arms.iter().any(|(w, _)| *w > 0), "all arm weights zero");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = src.below(total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(src);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ------------------------------------------------------------ collections

/// Length specification for [`collection::vec`]: an exact `usize` or a
/// half-open `Range<usize>` (proptest's convention).
///
/// [`collection::vec`]: collection::vec()
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_incl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max_incl: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { min: r.start, max_incl: r.end - 1 }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec`s of `elem`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, src: &mut Source) -> Vec<S::Value> {
            let SizeRange { min, max_incl } = self.size;
            let len = if max_incl > min {
                min + src.below((max_incl - min + 1) as u64) as usize
            } else {
                min
            };
            (0..len).map(|_| self.elem.generate(src)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    fn gen<S: Strategy>(s: &S, seed: u64) -> S::Value {
        s.generate(&mut Source::fresh(SimRng::new(seed)))
    }

    #[test]
    fn ranges_respect_bounds() {
        for seed in 0..200 {
            let v = gen(&(10u32..20), seed);
            assert!((10..20).contains(&v));
            let w = gen(&(-5i32..5), seed);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn zero_stream_yields_simplest_values() {
        let mut src = Source::replay(&[]);
        let (a, b, c) = (3u32..9, any::<bool>(), collection::vec(0u64..100, 1..5))
            .generate(&mut src);
        assert_eq!(a, 3, "range shrinks to its start");
        assert!(!b, "bool shrinks to false");
        assert_eq!(c, vec![0], "vec shrinks to min length of simplest elems");
    }

    #[test]
    fn map_and_union_compose() {
        let s = Union::new(vec![
            (4, (0u32..10).prop_map(|v| v as u64).boxed()),
            (1, Just(999u64).boxed()),
        ]);
        let mut seen_big = false;
        for seed in 0..300 {
            let v = gen(&s, seed);
            assert!(v < 10 || v == 999);
            seen_big |= v == 999;
        }
        assert!(seen_big, "low-weight arm never selected");
        let zero = s.generate(&mut Source::replay(&[]));
        assert_eq!(zero, 0, "union shrinks to first arm's simplest value");
    }

    #[test]
    fn exact_size_vec_draws_no_length_entry() {
        let s = collection::vec(0u8..10, 3usize);
        let mut src = Source::fresh(SimRng::new(1));
        let v = s.generate(&mut src);
        assert_eq!(v.len(), 3);
        assert_eq!(src.into_record().len(), 3, "no wasted length draw");
    }
}
