//! proplite self-tests: the runner finds failures, shrinks them to a
//! minimal input, reports a reproducing seed, and the same seed
//! deterministically reproduces the same shrunk failure.

use proplite::prelude::*;
use proplite::{Config, check};

#[test]
fn failure_is_shrunk_minimal_and_seed_reproducible() {
    let strat = prop::collection::vec(0u32..10_000, 0..20);
    let property = |v: Vec<u32>| {
        prop_assert!(v.iter().all(|&x| x < 100));
        Ok(())
    };
    let cfg = Config { cases: 64, seed: None, max_shrink_iters: 4096 };

    let first = check("self::no_big_elements", &cfg, &strat, &property)
        .expect("a vec with an element >= 100 must be generated");
    // Greedy stream shrinking must reach the canonical minimal
    // counterexample: a single element at exactly the failure boundary.
    assert_eq!(first.value, "[100]", "shrunk to {} instead", first.value);
    assert!(first.message.contains("assertion failed"));

    // The whole run is deterministic: repeating it reproduces the same
    // case, seed, shrunk input and message.
    let again = check("self::no_big_elements", &cfg, &strat, &property).unwrap();
    assert_eq!(first, again);

    // The reported seed alone reproduces the same shrunk failure.
    let seeded = Config { seed: Some(first.seed), ..cfg };
    let replay = check("self::no_big_elements", &seeded, &strat, &property)
        .expect("reported seed must reproduce the failure");
    assert_eq!(replay.case, 0, "seeded runs execute exactly one case");
    assert_eq!(replay.seed, first.seed);
    assert_eq!(replay.value, first.value);
    assert_eq!(replay.message, first.message);
}

#[test]
fn panics_shrink_like_assertions() {
    // Failures raised by plain `assert!`/`panic!` (not prop_assert) are
    // caught, shrunk and reported identically.
    let strat = (0u64..1_000_000, 0u64..1_000_000);
    let property = |(a, b): (u64, u64)| {
        assert!(a + b < 1000, "sum too big: {}", a + b);
        Ok(())
    };
    let cfg = Config { cases: 64, seed: None, max_shrink_iters: 4096 };
    let fail = check("self::panicking_property", &cfg, &strat, &property)
        .expect("must find a pair summing past 1000");
    assert_eq!(fail.value, "(1000, 0)", "shrunk to {} instead", fail.value);
    assert!(fail.message.contains("sum too big: 1000"), "got: {}", fail.message);

    let seeded = Config { seed: Some(fail.seed), ..cfg };
    let replay = check("self::panicking_property", &seeded, &strat, &property).unwrap();
    assert_eq!(replay.value, fail.value);
    assert_eq!(replay.message, fail.message);
}

proplite! {
    #![config(cases = 256, max_shrink_iters = 64)]

    #[test]
    fn macro_surface_generates_and_passes(
        a in 0i64..1000,
        b in -500i64..500,
        flip in any::<bool>(),
        v in prop::collection::vec(prop_oneof![4 => 0u32..10, 1 => Just(99u32)], 0..6),
    ) {
        let (x, y) = if flip { (a, b) } else { (b, a) };
        prop_assert_eq!(x + y, y + x);
        prop_assert!(v.iter().all(|&e| e < 10 || e == 99));
        prop_assert!(v.len() < 6);
    }

    #[test]
    #[should_panic(expected = "PROPLITE_SEED")]
    fn failing_property_panics_with_reproduction_seed(x in 0u32..1000) {
        // Fails on ~half of all cases; 256 cases make a miss impossible
        // (probability 2^-256), and the report must carry the seed.
        prop_assert!(x < 500);
    }
}
