#![forbid(unsafe_code)]
//! # rdmanet — RDMA-channel fabric with software-emulated BCS primitives
//!
//! The BCS primitives lean on two pieces of QsNet hardware that most
//! interconnects do not have: switch-replicated ordered multicast and
//! network conditionals. This crate models an RDMA-channel fabric in the
//! style of 2003-era InfiniBand VAPI (Liu et al., "Design and
//! Implementation of MPICH2 over InfiniBand with RDMA Support",
//! cs/0310059) and rebuilds both missing primitives in software, behind
//! the same object-safe [`Fabric`] trait the QsNet fabric implements — so
//! the strobe/DEM layer and the descriptor-exchange path run unchanged on
//! either interconnect:
//!
//! * **eager RDMA write** (`put`): the payload lands directly in
//!   pre-registered destination memory with the completion flag
//!   piggybacked on the last bytes of the write; the receiver detects it
//!   with one NIC completion operation, no request/ack round trip.
//! * **rendezvous via RDMA read** (`get`): the requester posts an RDMA
//!   read work request (one control-sized wire message), the target HCA
//!   turns it around and streams the data back one-sided.
//! * **software multicast**: a binomial fan-out of point-to-point RDMA
//!   writes — `ceil(log2 n)` store-and-forward stages — serialized
//!   through a software sequencer so payloads stay totally ordered, which
//!   is what `Xfer-And-Signal` (and the strobe protocol above it)
//!   requires.
//! * **gather-to-root conditionals**: `Compare-And-Write` becomes a
//!   `ceil(log2 n)`-stage reduction tree rooted at a sequencer node;
//!   serialization through the same sequencer keeps overlapping
//!   conditionals sequentially consistent.
//!
//! The defining modeling difference from QsNet: RDMA channels have **no
//! free priority channel**. Control-sized packets (descriptors, read
//! requests) occupy the send/receive queue pairs like any other work
//! request, so control traffic queues behind bulk DMA. Fault injection
//! (`kill_node`, link degradation, planned drops) and the
//! snapshot/restore contract are identical to the QsNet fabric —
//! `bulk_seq` coordinates only count transfers larger than
//! [`CTRL_BYTES`], so one fault plan replays bit-identically on both
//! fabrics.

use qsnet::fabric::{CTRL_BYTES, OnDone};
use qsnet::model::log2_ceil;
use qsnet::{
    Degradation, Fabric, FabricKind, FabricSnapshot, FabricStats, NetModel, NodeId, QsNetFabric,
    SnapState, Topology,
};
use simcore::{Sim, SimDuration, SimTime};
use std::rc::Rc;

/// Build the fabric selected by `kind` — the one construction point both
/// engines use, so adding a fabric is a one-line change here.
pub fn build_fabric<W: 'static>(
    kind: FabricKind,
    model: NetModel,
    nodes: usize,
) -> Box<dyn Fabric<W>> {
    match kind {
        FabricKind::QsNet => Box::new(QsNetFabric::new(model, nodes)),
        FabricKind::Rdma => Box::new(RdmaFabric::new(model, nodes)),
    }
}

/// Occupancy state of the RDMA fabric at a quiescent instant (see
/// `qsnet::FabricSnapshot` for the capture/restore contract).
#[derive(Clone, Debug)]
struct RdmaState {
    tx_free: Vec<SimTime>,
    rx_free: Vec<SimTime>,
    seq_free: SimTime,
    stats: FabricStats,
    bulk_seq: u64,
}

impl SnapState for RdmaState {
    fn materialize_state(&self) -> Rc<dyn SnapState> {
        Rc::new(self.clone())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The simulated RDMA-channel interconnect.
///
/// Issue-time analytic timing like the QsNet fabric: per-HCA send/receive
/// queue-pair clocks (`tx_free`/`rx_free`) plus one software **sequencer**
/// clock (`seq_free`) that stands in for QsNet's hardware root serializer —
/// every emulated collective acquires it, which is where the total order
/// of multicast payloads and conditional fire times comes from.
pub struct RdmaFabric {
    model: NetModel,
    topo: Topology,
    tx_free: Vec<SimTime>,
    rx_free: Vec<SimTime>,
    /// Software sequencer: totally orders emulated collectives.
    seq_free: SimTime,
    stats: FabricStats,
    dead: Vec<bool>,
    degradations: Vec<Degradation>,
    drop_seqs: Vec<u64>,
    bulk_seq: u64,
    snap_cache: Option<FabricSnapshot>,
    snap_dirty: bool,
}

impl RdmaFabric {
    pub fn new(model: NetModel, nodes: usize) -> RdmaFabric {
        RdmaFabric {
            model,
            topo: Topology::fat_tree(nodes),
            tx_free: vec![SimTime::ZERO; nodes],
            rx_free: vec![SimTime::ZERO; nodes],
            seq_free: SimTime::ZERO,
            stats: FabricStats::default(),
            dead: vec![false; nodes],
            degradations: Vec::new(),
            drop_seqs: Vec::new(),
            bulk_seq: 0,
            snap_cache: None,
            snap_dirty: true,
        }
    }

    #[inline]
    fn touch(&mut self) {
        self.snap_dirty = true;
    }

    /// Worst degradation factor touching `node` at instant `t`.
    fn degrade_factor(&self, node: NodeId, t: SimTime) -> u64 {
        self.degradations
            .iter()
            .filter(|d| d.node == node && d.from <= t && t < d.to)
            .map(|d| d.factor as u64)
            .max()
            .unwrap_or(1)
    }

    /// Per-stage cost of one software-tree forwarding hop for a multicast
    /// payload of `bytes`: the model's stage latency plus retransmission.
    /// Running a hardware-multicast model on this fabric still emulates in
    /// software — the relay then costs a wire hop plus an HCA operation.
    fn mcast_stage(&self, bytes: u64) -> SimDuration {
        let stage = match self.model.mcast {
            qsnet::McastImpl::SoftwareTree { stage, .. } => stage,
            qsnet::McastImpl::Hardware { .. } => self.model.base_latency + self.model.nic_op,
        };
        stage + self.model.mcast_tx_time(bytes)
    }

    /// Per-stage round cost of the gather-to-root conditional emulation.
    fn cond_stage(&self) -> SimDuration {
        match self.model.cond {
            qsnet::CondImpl::SoftwareTree { stage } => stage,
            qsnet::CondImpl::Hardware { .. } => {
                // Up-and-down a level in software: two wire hops + HCA ops.
                (self.model.base_latency + self.model.nic_op) * 2
            }
        }
    }

    /// Reserve the send/receive queue pairs for one RDMA write. Unlike
    /// QsNet there is no priority channel: control-sized writes occupy the
    /// ports too. Only transfers larger than `CTRL_BYTES` consume a
    /// `bulk_seq` coordinate (drop plans stay portable across fabrics).
    /// Returns the last-byte time and whether the payload lands.
    fn reserve_write(
        &mut self,
        issue: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> (SimTime, bool) {
        if src == dst {
            // Local loopback through the HCA; DMA time, no wire.
            return (issue + self.model.nic_op + self.model.tx_time(bytes), true);
        }
        let mut dropped = false;
        let mut factor = 1u64;
        if bytes > CTRL_BYTES {
            let seq = self.bulk_seq;
            self.bulk_seq += 1;
            dropped = self.drop_seqs.binary_search(&seq).is_ok();
            if dropped {
                self.stats.drops += 1;
            }
            factor = self
                .degrade_factor(src, issue)
                .max(self.degrade_factor(dst, issue));
        }
        let tx = self.model.tx_time(bytes) * factor;
        let start = issue.max(self.tx_free[src.0]);
        self.tx_free[src.0] = start + tx;
        let first_bit = start + self.model.unicast_latency(self.topo.hops(src, dst));
        let rx_start = first_bit.max(self.rx_free[dst.0]);
        let deliver = rx_start + tx;
        self.rx_free[dst.0] = deliver;
        (deliver, !dropped)
    }
}

impl<W: 'static> Fabric<W> for RdmaFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::Rdma
    }
    fn model(&self) -> &NetModel {
        &self.model
    }
    fn topology(&self) -> &Topology {
        &self.topo
    }
    fn nodes(&self) -> usize {
        self.topo.nodes()
    }
    fn stats(&self) -> &FabricStats {
        &self.stats
    }
    fn reset_stats(&mut self) {
        self.touch();
        self.stats = FabricStats::default();
    }
    fn note_gather(&mut self, msgs: u64, logical_bytes: u64) {
        self.touch();
        self.stats.gathers += 1;
        self.stats.gathered_msgs += msgs;
        self.stats.gathered_bytes += logical_bytes;
    }

    fn kill_node(&mut self, node: NodeId) {
        self.dead[node.0] = true;
    }
    fn revive_node(&mut self, node: NodeId) {
        self.dead[node.0] = false;
    }
    fn is_dead(&self, node: NodeId) -> bool {
        self.dead[node.0]
    }
    fn degrade_link(&mut self, d: Degradation) {
        assert!(d.factor >= 1);
        self.degradations.push(d);
    }
    fn clear_degradations(&mut self) {
        self.degradations.clear();
    }
    fn plan_drops(&mut self, mut seqs: Vec<u64>) {
        seqs.sort_unstable();
        seqs.dedup();
        self.drop_seqs = seqs;
    }
    fn bulk_seq(&self) -> u64 {
        self.bulk_seq
    }

    fn snapshot(&mut self) -> FabricSnapshot {
        if self.snap_dirty || self.snap_cache.is_none() {
            self.snap_cache = Some(FabricSnapshot::new(Rc::new(RdmaState {
                tx_free: self.tx_free.clone(),
                rx_free: self.rx_free.clone(),
                seq_free: self.seq_free,
                stats: self.stats,
                bulk_seq: self.bulk_seq,
            })));
            self.snap_dirty = false;
        }
        self.snap_cache.clone().expect("snapshot cache just filled")
    }

    fn restore(&mut self, s: &FabricSnapshot) {
        let p: &RdmaState = s
            .state()
            .as_any()
            .downcast_ref()
            .expect("fabric-kind mismatch: RDMA fabric restoring a non-RDMA snapshot");
        assert_eq!(p.tx_free.len(), self.tx_free.len(), "snapshot node count");
        self.tx_free.copy_from_slice(&p.tx_free);
        self.rx_free.copy_from_slice(&p.rx_free);
        self.seq_free = p.seq_free;
        self.stats = p.stats;
        self.bulk_seq = p.bulk_seq;
        self.dead.iter_mut().for_each(|d| *d = false);
        self.degradations.clear();
        self.drop_seqs.clear();
        self.snap_cache = Some(s.clone());
        self.snap_dirty = false;
    }

    /// Eager RDMA write: the payload and its piggybacked completion flag
    /// land with one work request; the destination HCA spends one
    /// operation surfacing the completion.
    fn put_boxed(
        &mut self,
        sim: &mut Sim<W>,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        on_delivered: OnDone<W>,
    ) -> SimTime {
        self.touch();
        self.stats.puts += 1;
        self.stats.put_bytes += bytes;
        let (last_byte, landed) = self.reserve_write(sim.now(), src, dst, bytes);
        let deliver = if src == dst {
            last_byte
        } else {
            last_byte + self.model.nic_op
        };
        if self.dead[src.0] || self.dead[dst.0] {
            self.stats.dead_skips += 1;
        } else if landed {
            sim.schedule_at(deliver, on_delivered);
        }
        deliver
    }

    /// Rendezvous via RDMA read: the requester posts a read work request
    /// (a control-sized wire message that, unlike on QsNet, queues through
    /// the ports), the target HCA turns it around, and the data streams
    /// back one-sided.
    fn get_boxed(
        &mut self,
        sim: &mut Sim<W>,
        requester: NodeId,
        target: NodeId,
        bytes: u64,
        on_delivered: OnDone<W>,
    ) -> SimTime {
        self.touch();
        self.stats.gets += 1;
        self.stats.get_bytes += bytes;
        let (req_at, _) = self.reserve_write(sim.now(), requester, target, CTRL_BYTES);
        let data_issue = req_at + self.model.nic_op;
        let (last_byte, landed) = self.reserve_write(data_issue, target, requester, bytes);
        let deliver = if requester == target {
            last_byte
        } else {
            last_byte + self.model.nic_op
        };
        if self.dead[requester.0] || self.dead[target.0] {
            self.stats.dead_skips += 1;
        } else if landed {
            sim.schedule_at(deliver, on_delivered);
        }
        deliver
    }

    /// Software multicast: binomial fan-out of point-to-point RDMA writes.
    ///
    /// Destination `j` (in argument order, self-deliveries excepted) is
    /// reached after `floor(log2(j+1)) + 1` store-and-forward stages —
    /// each stage the set of reached nodes doubles as every holder
    /// forwards one copy. The whole operation acquires the software
    /// sequencer for its first stage, so concurrent multicasts inject in a
    /// total order, exactly like QsNet's root serializer — `per_dest`
    /// hooks then fire in deterministic (stage, argument-order) order.
    fn multicast_boxed(
        &mut self,
        sim: &mut Sim<W>,
        src: NodeId,
        dests: &[NodeId],
        bytes: u64,
        per_dest: Option<Rc<dyn Fn(&mut W, &mut Sim<W>, NodeId)>>,
        on_complete: OnDone<W>,
    ) -> SimTime {
        assert!(!dests.is_empty(), "multicast needs at least one destination");
        self.touch();
        self.stats.multicasts += 1;
        self.stats.multicast_bytes += bytes * dests.len() as u64;

        let stage_cost = self.mcast_stage(bytes);
        let tx = self.model.mcast_tx_time(bytes);
        let ctrl = bytes <= CTRL_BYTES;
        // The root-of-tree injection owns the source send queue and the
        // sequencer; the sequencer frees after one stage (pipelined, but
        // totally ordered starts — the QsNet `coll_free` discipline).
        let start = sim.now().max(self.seq_free).max(self.tx_free[src.0]);
        self.tx_free[src.0] = start + tx;
        self.seq_free = start + stage_cost;

        let mut last = SimTime::ZERO;
        let mut relay = 0u64; // index among non-self destinations
        for &d in dests {
            let deliver = if d == src {
                start + self.model.nic_op
            } else {
                let depth = log2_ceil((relay + 2) as usize) as u64; // floor(log2(relay+1))+1
                relay += 1;
                let base = start + self.model.base_latency + stage_cost * depth;
                if ctrl {
                    base
                } else {
                    // Bulk copies additionally FIFO through the receive QP.
                    let rx_start = (base - tx).max(self.rx_free[d.0]);
                    let deliver = rx_start + tx;
                    self.rx_free[d.0] = deliver;
                    deliver
                }
            };
            last = last.max(deliver);
            if self.dead[d.0] || self.dead[src.0] {
                self.stats.dead_skips += 1;
                continue;
            }
            if let Some(cb) = &per_dest {
                let cb = Rc::clone(cb);
                sim.schedule_at(deliver, move |w, s| cb(w, s, d));
            }
        }
        sim.schedule_at(last, on_complete);
        last
    }

    /// Gather-to-root conditional: `ceil(log2 span)` reduction stages up a
    /// software tree, serialized through the sequencer — overlapping
    /// conditionals stay sequentially consistent, at software latency.
    fn conditional_boxed(
        &mut self,
        sim: &mut Sim<W>,
        _src: NodeId,
        span: usize,
        on_fire: OnDone<W>,
    ) -> SimTime {
        assert!(span > 0);
        self.touch();
        self.stats.conditionals += 1;
        let start = sim.now().max(self.seq_free);
        self.seq_free = start + self.model.tx_time(CTRL_BYTES) + self.model.nic_op;
        let fire = start + self.cond_stage() * log2_ceil(span) as u64;
        sim.schedule_at(fire, on_fire);
        fire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct W {
        delivered: Vec<(u64, &'static str)>,
        per_dest: Vec<(u64, usize)>,
    }

    fn world() -> W {
        W {
            delivered: vec![],
            per_dest: vec![],
        }
    }

    fn fab(nodes: usize) -> Box<dyn Fabric<W>> {
        build_fabric(FabricKind::Rdma, NetModel::infiniband(), nodes)
    }

    #[test]
    fn build_fabric_dispatches_on_kind() {
        let q: Box<dyn Fabric<W>> = build_fabric(FabricKind::QsNet, NetModel::qsnet(), 4);
        assert_eq!(q.kind(), FabricKind::QsNet);
        let r = fab(4);
        assert_eq!(r.kind(), FabricKind::Rdma);
        assert_eq!(r.nodes(), 4);
    }

    #[test]
    fn eager_write_is_latency_plus_wire_plus_completion() {
        let m = NetModel::infiniband();
        let mut f = fab(8);
        let mut sim: Sim<W> = Sim::new();
        let mut w = world();
        let bytes = 820_000; // 1 ms at 820 MB/s
        let t = f.put(&mut sim, NodeId(0), NodeId(1), bytes, |w, s| {
            w.delivered.push((s.now().0, "put"));
        });
        sim.run(&mut w);
        let expect = m.unicast_latency(2) + m.tx_time(bytes) + m.nic_op;
        assert_eq!(t.since(SimTime::ZERO), expect);
        assert_eq!(w.delivered, vec![(t.0, "put")]);
    }

    #[test]
    fn control_packets_occupy_the_ports_unlike_qsnet() {
        // Two back-to-back control-sized writes from one source serialize
        // through the send QP on RDMA; on QsNet they ride the free
        // priority channel and complete at the same instant.
        let m = NetModel::qsnet(); // same constants on both fabrics
        let mut sim: Sim<W> = Sim::new();
        let mut r: Box<dyn Fabric<W>> = build_fabric(FabricKind::Rdma, m, 8);
        let r1 = r.put(&mut sim, NodeId(0), NodeId(1), CTRL_BYTES, |_, _| {});
        let r2 = r.put(&mut sim, NodeId(0), NodeId(2), CTRL_BYTES, |_, _| {});
        assert!(r2.since(r1) >= m.tx_time(CTRL_BYTES) - simcore::SimDuration::nanos(1));
        let mut q: Box<dyn Fabric<W>> = build_fabric(FabricKind::QsNet, m, 8);
        let q1 = q.put(&mut sim, NodeId(0), NodeId(1), CTRL_BYTES, |_, _| {});
        let q2 = q.put(&mut sim, NodeId(0), NodeId(2), CTRL_BYTES, |_, _| {});
        assert_eq!(q1, q2, "qsnet control puts are unqueued");
    }

    #[test]
    fn rendezvous_get_costs_request_turnaround_data() {
        let m = NetModel::infiniband();
        let mut f = fab(8);
        let mut sim: Sim<W> = Sim::new();
        let mut w = world();
        let bytes = 100_000;
        let t = f.get(&mut sim, NodeId(0), NodeId(1), bytes, |w, s| {
            w.delivered.push((s.now().0, "get"));
        });
        sim.run(&mut w);
        let one_way = m.unicast_latency(2);
        let expect = one_way
            + m.tx_time(CTRL_BYTES)
            + m.nic_op
            + one_way
            + m.tx_time(bytes)
            + m.nic_op;
        assert_eq!(t.since(SimTime::ZERO), expect);
        assert_eq!(w.delivered.len(), 1);
    }

    #[test]
    fn software_multicast_reaches_all_with_log_depth() {
        let m = NetModel::infiniband();
        let mut f = fab(32);
        let mut sim: Sim<W> = Sim::new();
        let mut w = world();
        let dests: Vec<NodeId> = (0..32).map(NodeId).collect();
        let t = f.multicast(
            &mut sim,
            NodeId(0),
            &dests,
            CTRL_BYTES,
            Some(Rc::new(|w: &mut W, s: &mut Sim<W>, d: NodeId| {
                w.per_dest.push((s.now().0, d.0));
            })),
            |w, s| w.delivered.push((s.now().0, "done")),
        );
        sim.run(&mut w);
        assert_eq!(w.per_dest.len(), 32);
        assert_eq!(w.delivered.len(), 1);
        let max_dest = w.per_dest.iter().map(|&(t, _)| t).max().unwrap();
        assert_eq!(w.delivered[0].0, max_dest);
        assert_eq!(t.0, max_dest);
        // Binomial tree: the last of 31 relayed copies lands 5 stages deep,
        // and the spread between first and last non-self delivery is at
        // least 4 stage latencies — the opposite of hardware multicast's
        // tight window.
        let stage = match m.mcast {
            qsnet::McastImpl::SoftwareTree { stage, .. } => stage,
            _ => unreachable!(),
        };
        let wire: Vec<u64> = w
            .per_dest
            .iter()
            .filter(|&&(_, d)| d != 0)
            .map(|&(t, _)| t)
            .collect();
        let spread = wire.iter().max().unwrap() - wire.iter().min().unwrap();
        assert!(
            spread >= 4 * stage.as_nanos(),
            "software multicast should fan out over stages, spread {spread}ns"
        );
    }

    #[test]
    fn multicasts_are_totally_ordered_through_the_sequencer() {
        let m = NetModel::infiniband();
        let mut f = fab(8);
        let mut sim: Sim<W> = Sim::new();
        let dests: Vec<NodeId> = (0..8).map(NodeId).collect();
        let bytes = 400_000;
        let t1 = f.multicast(&mut sim, NodeId(0), &dests, bytes, None, |_, _| {});
        let t2 = f.multicast(&mut sim, NodeId(1), &dests, bytes, None, |_, _| {});
        // The second multicast cannot start before the first clears its
        // opening stage.
        assert!(t2.since(t1) >= m.mcast_tx_time(bytes) - simcore::SimDuration::micros(10));
    }

    #[test]
    fn conditional_is_log_stages_and_serializes() {
        let m = NetModel::infiniband();
        let mut f = fab(32);
        let mut sim: Sim<W> = Sim::new();
        let mut w = world();
        let stage = match m.cond {
            qsnet::CondImpl::SoftwareTree { stage } => stage,
            _ => unreachable!(),
        };
        let t1 = f.conditional(&mut sim, NodeId(0), 32, |w, s| {
            w.delivered.push((s.now().0, "c1"));
        });
        assert_eq!(t1.since(SimTime::ZERO), stage * 5); // log2_ceil(32) = 5
        let t2 = f.conditional(&mut sim, NodeId(1), 32, |w, s| {
            w.delivered.push((s.now().0, "c2"));
        });
        assert!(t2 > t1 - stage * 5, "ordered starts");
        sim.run(&mut w);
        assert_eq!(w.delivered.len(), 2);
        assert_eq!(w.delivered[0].1, "c1");
    }

    #[test]
    fn fault_surface_matches_qsnet_contract() {
        let mut f = fab(8);
        let mut sim: Sim<W> = Sim::new();
        let mut w = world();
        f.plan_drops(vec![1]);
        // Control writes take no bulk_seq coordinate; bulk seq 1 drops.
        f.put(&mut sim, NodeId(0), NodeId(1), CTRL_BYTES, |w, s| {
            w.delivered.push((s.now().0, "ctrl"));
        });
        f.put(&mut sim, NodeId(0), NodeId(1), 400_000, |w, s| {
            w.delivered.push((s.now().0, "bulk0"));
        });
        f.put(&mut sim, NodeId(0), NodeId(1), 400_000, |w, s| {
            w.delivered.push((s.now().0, "bulk1"));
        });
        f.put(&mut sim, NodeId(0), NodeId(1), 400_000, |w, s| {
            w.delivered.push((s.now().0, "bulk2"));
        });
        sim.run(&mut w);
        let tags: Vec<&str> = w.delivered.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec!["ctrl", "bulk0", "bulk2"]);
        assert_eq!(f.stats().drops, 1);
        assert_eq!(f.bulk_seq(), 3);

        // Dead node: reservations unchanged, delivery suppressed.
        let mut dead_f = fab(8);
        let mut live_f = fab(8);
        dead_f.kill_node(NodeId(3));
        let t_dead = dead_f.put(&mut sim, NodeId(0), NodeId(3), 400_000, |w, s| {
            w.delivered.push((s.now().0, "lost"));
        });
        let t_live = live_f.put(&mut sim, NodeId(0), NodeId(3), 400_000, |_, _| {});
        sim.run(&mut w);
        assert_eq!(t_dead, t_live, "reservations stay deterministic");
        assert!(!w.delivered.iter().any(|&(_, t)| t == "lost"));
        assert_eq!(dead_f.stats().dead_skips, 1);
        dead_f.revive_node(NodeId(3));
        assert!(!dead_f.is_dead(NodeId(3)));
    }

    #[test]
    fn degradation_window_scales_bulk_writes() {
        let m = NetModel::infiniband();
        let mut f = fab(8);
        let mut sim: Sim<W> = Sim::new();
        let bytes = 400_000;
        f.degrade_link(Degradation {
            node: NodeId(1),
            from: SimTime::ZERO,
            to: SimTime(1_000_000_000),
            factor: 4,
        });
        let t = f.put(&mut sim, NodeId(0), NodeId(1), bytes, |_, _| {});
        let expect = m.unicast_latency(2) + m.tx_time(bytes) * 4 + m.nic_op;
        assert_eq!(t.since(SimTime::ZERO), expect);
        f.clear_degradations();
        let t2 = f.put(&mut sim, NodeId(2), NodeId(3), bytes, |_, _| {});
        assert_eq!(
            t2.since(SimTime::ZERO),
            m.unicast_latency(2) + m.tx_time(bytes) + m.nic_op
        );
    }

    #[test]
    fn snapshot_restore_round_trips_and_revives() {
        let mut f = fab(8);
        let mut sim: Sim<W> = Sim::new();
        f.put(&mut sim, NodeId(0), NodeId(1), 400_000, |_, _| {});
        f.conditional(&mut sim, NodeId(0), 8, |_, _| {});
        let snap = f.snapshot();
        f.kill_node(NodeId(5));
        f.plan_drops(vec![7]);
        f.put(&mut sim, NodeId(0), NodeId(2), 640_000, |_, _| {});
        let t_before = f.put(&mut sim, NodeId(0), NodeId(4), 400_000, |_, _| {});
        f.restore(&snap);
        assert!(!f.is_dead(NodeId(5)));
        assert_eq!(f.bulk_seq(), 1);
        assert_eq!(f.stats().puts, 1);
        // Re-capture of the restored (untouched) state is a refcount bump.
        let again = f.snapshot();
        assert!(Rc::ptr_eq(snap.state(), again.state()));
        let t_after = f.put(&mut sim, NodeId(0), NodeId(4), 400_000, |_, _| {});
        assert!(t_after <= t_before);
    }

    #[test]
    #[should_panic(expected = "fabric-kind mismatch")]
    fn restoring_a_qsnet_snapshot_panics() {
        let mut q: Box<dyn Fabric<W>> = build_fabric(FabricKind::QsNet, NetModel::qsnet(), 4);
        let snap = q.snapshot();
        let mut r = fab(4);
        r.restore(&snap);
    }
}
