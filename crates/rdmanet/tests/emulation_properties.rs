//! Property tests of the software-emulated BCS primitives: the RDMA
//! fabric's binomial-tree multicast and gather-to-root conditional must be
//! *functionally* equivalent to QsNet's hardware primitives — the same
//! payload set delivered to the same destinations, completions in a
//! deterministic order — across random topologies, group sizes and
//! operation scripts. Timing legitimately differs (that difference is the
//! point of the fabric-matrix experiment); delivery semantics must not.

use proplite::prelude::*;
use qsnet::{FabricKind, NetModel, NodeId};
use rdmanet::build_fabric;
use simcore::Sim;
use std::rc::Rc;

/// World shared by every run: the observable delivery record.
#[derive(Default)]
struct Log {
    /// One `(op, virtual_nanos, dest)` entry per per-destination delivery.
    deliveries: Vec<(usize, u64, usize)>,
    /// One `(op, virtual_nanos)` entry per operation completion.
    completions: Vec<(usize, u64)>,
}

/// Table 1 model each fabric kind actually ships with.
fn model_for(kind: FabricKind) -> NetModel {
    match kind {
        FabricKind::QsNet => NetModel::qsnet(),
        FabricKind::Rdma => NetModel::infiniband(),
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// Multicast `bytes` from `src` to the group selected by `picks`.
    Mcast { src: u8, bytes: u32, picks: Vec<u8> },
    /// Global conditional rooted at `src` over the first `span` nodes.
    Cond { src: u8 },
}

fn op_strategy(nodes: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0..nodes,
            1u32..200_000,
            prop::collection::vec(0..nodes, 1..nodes as usize)
        )
            .prop_map(|(src, bytes, picks)| Op::Mcast { src, bytes, picks }),
        (0..nodes).prop_map(|src| Op::Cond { src }),
    ]
}

/// Deduplicated, order-preserving destination group for a mcast op.
fn group(picks: &[u8]) -> Vec<NodeId> {
    let mut seen = vec![false; 256];
    let mut out = Vec::new();
    for &p in picks {
        if !seen[p as usize] {
            seen[p as usize] = true;
            out.push(NodeId(p as usize));
        }
    }
    out
}

/// Execute `ops` on a fresh fabric of `kind`, with `dead` killed first,
/// and return the full delivery/completion log after the sim drains.
fn run_script(kind: FabricKind, nodes: usize, dead: &[u8], ops: &[Op]) -> Log {
    let mut fab = build_fabric::<Log>(kind, model_for(kind), nodes);
    let mut sim: Sim<Log> = Sim::new();
    for &d in dead {
        fab.kill_node(NodeId(d as usize));
    }
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Mcast { src, bytes, picks } => {
                let dests = group(picks);
                let per_dest = Rc::new(move |w: &mut Log, s: &mut Sim<Log>, d: NodeId| {
                    w.deliveries.push((i, s.now().0, d.0));
                });
                fab.multicast(
                    &mut sim,
                    NodeId(*src as usize),
                    &dests,
                    *bytes as u64,
                    Some(per_dest),
                    move |w, s| w.completions.push((i, s.now().0)),
                );
            }
            Op::Cond { src } => {
                fab.conditional(&mut sim, NodeId(*src as usize), nodes, move |w, s| {
                    w.completions.push((i, s.now().0))
                });
            }
        }
    }
    let mut log = Log::default();
    sim.run(&mut log);
    log
}

/// The `(op, dest)` delivery set, sorted — the payload-placement contract.
fn placement(log: &Log) -> Vec<(usize, usize)> {
    let mut v: Vec<(usize, usize)> = log.deliveries.iter().map(|&(op, _, d)| (op, d)).collect();
    v.sort_unstable();
    v
}

proplite! {
    #![config(cases = 48)]

    /// Software-emulated multicast reaches exactly the destinations the
    /// hardware multicast reaches: the same (op, dest) placement set, with
    /// every live group member covered and no duplicate deliveries.
    #[test]
    fn emulation_delivers_the_same_payload_set(
        nodes in 2usize..48,
        ops in prop::collection::vec(op_strategy(48), 1..12)
    ) {
        let ops: Vec<Op> = ops.into_iter().map(|op| clamp(op, nodes)).collect();
        let hw = run_script(FabricKind::QsNet, nodes, &[], &ops);
        let sw = run_script(FabricKind::Rdma, nodes, &[], &ops);
        let hw_place = placement(&hw);
        prop_assert_eq!(&hw_place, &placement(&sw));
        // Cross-check against the script itself: every mcast op delivers
        // to its whole deduplicated group exactly once.
        let mut want: Vec<(usize, usize)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            if let Op::Mcast { picks, .. } = op {
                for d in group(picks) {
                    want.push((i, d.0));
                }
            }
        }
        want.sort_unstable();
        prop_assert_eq!(hw_place, want);
        // Both fabrics complete every operation exactly once.
        prop_assert_eq!(hw.completions.len(), ops.len());
        prop_assert_eq!(sw.completions.len(), ops.len());
    }

    /// Dead destinations are skipped identically by the hardware and the
    /// software tree: killing nodes removes exactly their deliveries.
    #[test]
    fn dead_nodes_are_skipped_identically(
        nodes in 4usize..32,
        dead in prop::collection::vec(0u8..32, 0..4),
        ops in prop::collection::vec(op_strategy(32), 1..8)
    ) {
        let ops: Vec<Op> = ops.into_iter().map(|op| clamp(op, nodes)).collect();
        let dead: Vec<u8> = dead.into_iter().filter(|&d| (d as usize) < nodes).collect();
        let hw = run_script(FabricKind::QsNet, nodes, &dead, &ops);
        let sw = run_script(FabricKind::Rdma, nodes, &dead, &ops);
        prop_assert_eq!(placement(&hw), placement(&sw));
        for &(_, _, d) in &sw.deliveries {
            prop_assert!(!dead.contains(&(d as u8)), "delivery to dead node {d}");
        }
    }

    /// The emulated collectives complete in a deterministic order: the
    /// same script replays to the bit-identical delivery and completion
    /// log — times, destinations and sequence.
    #[test]
    fn emulated_completion_order_replays_identically(
        nodes in 2usize..40,
        ops in prop::collection::vec(op_strategy(40), 1..15)
    ) {
        let ops: Vec<Op> = ops.into_iter().map(|op| clamp(op, nodes)).collect();
        let a = run_script(FabricKind::Rdma, nodes, &[], &ops);
        let b = run_script(FabricKind::Rdma, nodes, &[], &ops);
        prop_assert_eq!(a.deliveries, b.deliveries);
        prop_assert_eq!(a.completions, b.completions);
    }

    /// Multicasts are totally ordered on both fabrics: two multicasts from
    /// different sources to overlapping groups arrive at every shared
    /// destination in the same relative order everywhere.
    #[test]
    fn overlapping_multicasts_agree_on_order_at_every_destination(
        nodes in 3usize..32,
        src_a in 0usize..32,
        src_b in 0usize..32,
        bytes in 1u32..100_000
    ) {
        let (src_a, src_b) = (src_a % nodes, src_b % nodes);
        let all: Vec<u8> = (0..nodes as u8).collect();
        let ops = vec![
            Op::Mcast { src: src_a as u8, bytes, picks: all.clone() },
            Op::Mcast { src: src_b as u8, bytes, picks: all },
        ];
        for kind in [FabricKind::QsNet, FabricKind::Rdma] {
            let log = run_script(kind, nodes, &[], &ops);
            // Per destination, sort its deliveries by time; the op order
            // must be (0, 1) at every destination (issue order — the
            // serializer's total order). Source loopback is exempt on both
            // fabrics: a node's own copy lands at local-memory speed, ahead
            // of anything still crossing the wire.
            for d in (0..nodes).filter(|&d| d != src_a && d != src_b) {
                let mut at: Vec<(u64, usize)> = log
                    .deliveries
                    .iter()
                    .filter(|&&(_, _, dest)| dest == d)
                    .map(|&(op, t, _)| (t, op))
                    .collect();
                at.sort_unstable();
                let order: Vec<usize> = at.iter().map(|&(_, op)| op).collect();
                prop_assert_eq!(order, vec![0, 1], "dest {d} saw reordered multicasts");
            }
        }
    }
}

/// Clamp an op's node references into `0..nodes`.
fn clamp(op: Op, nodes: usize) -> Op {
    match op {
        Op::Mcast { src, bytes, picks } => Op::Mcast {
            src: src % nodes as u8,
            bytes,
            picks: picks.into_iter().map(|p| p % nodes as u8).collect(),
        },
        Op::Cond { src } => Op::Cond { src: src % nodes as u8 },
    }
}
