//! The STORM substrate in action: job launch over hardware multicast,
//! heartbeat-based failure detection, and gang scheduling.
//!
//! ```sh
//! cargo run --release --example storm_cluster
//! ```

use bcs_repro::qsnet::{NetModel, NodeId};
use bcs_repro::simcore::{Sim, SimDuration, SimTime};
use bcs_repro::storm::gang::{JobProfile, gang_schedule};
use bcs_repro::storm::{StormWorld, heartbeat, launch};

fn main() {
    // --- Job launch -----------------------------------------------------
    println!("job launch (8 MB binary, 2 processes/node):");
    for nodes in [4, 16, 32, 64] {
        let rep = launch::measure_launch(NetModel::qsnet(), nodes, 8 * 1024 * 1024, 2);
        println!("  {nodes:>3} nodes: {:.1} ms", rep.total.as_millis_f64());
    }
    println!("  (hardware multicast makes dissemination flat in node count)");

    // --- Heartbeats + failure detection ---------------------------------
    let mut w = StormWorld::new(NetModel::qsnet(), 32);
    let mut sim: Sim<StormWorld> = Sim::new();
    let monitor = heartbeat::start(&mut w, &mut sim, SimDuration::millis(10));
    let m2 = std::rc::Rc::clone(&monitor);
    sim.schedule_at(
        SimTime::ZERO + SimDuration::millis(300),
        move |_w: &mut StormWorld, _sim| heartbeat::silence(&m2, NodeId(17)),
    );
    sim.set_horizon(SimTime::ZERO + SimDuration::millis(500));
    sim.run(&mut w);
    {
        let m = monitor.borrow();
        let (beat, node) = m.detections[0];
        println!(
            "\nheartbeats: node {} silenced at t=300ms, detected dead at beat {} (t≈{}ms)",
            node.0,
            beat,
            beat * 10
        );
    }

    // --- Gang scheduling -------------------------------------------------
    let job = JobProfile {
        name: "blocking-heavy",
        compute: SimDuration::micros(3_500),
        blocked: SimDuration::micros(1_200),
        steps: 2_000,
    };
    let solo = gang_schedule(&[job.clone()], SimDuration::micros(500), SimDuration::micros(25));
    let duo = gang_schedule(
        &[job.clone(), job.clone()],
        SimDuration::micros(500),
        SimDuration::micros(25),
    );
    println!("\ngang scheduling a second job into the blocking holes (§5.4):");
    println!(
        "  1 job : makespan {:.2}s, CPU utilization {:.0}%",
        solo.total.as_secs_f64(),
        solo.utilization * 100.0
    );
    println!(
        "  2 jobs: makespan {:.2}s, CPU utilization {:.0}% ({} context switches)",
        duo.total.as_secs_f64(),
        duo.utilization * 100.0,
        duo.switches
    );
    println!(
        "  serial would take {:.2}s — the second job runs nearly for free",
        solo.total.as_secs_f64() * 2.0
    );
}
