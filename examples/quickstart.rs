//! Quickstart: run an MPI program on the simulated cluster with both
//! engines and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The program is ordinary blocking-style Rust: each rank computes, then
//! participates in point-to-point exchanges and an allreduce. The same
//! closure runs unmodified on BCS-MPI (the paper's buffered-coscheduled
//! implementation) and on the production-style baseline.

use bcs_repro::apps::runner::{EngineSel, run_app, slowdown_pct};
use bcs_repro::mpi_api::datatype::ReduceOp;
use bcs_repro::mpi_api::runtime::JobLayout;
use bcs_repro::simcore::SimDuration;

fn main() {
    // 8 nodes x 2 CPUs, 16 ranks — a miniature "crescendo".
    let layout = || JobLayout::new(8, 2, 16);

    let program = |mut mpi: bcs_repro::mpi_api::AsyncMpi| async move {
        let me = mpi.rank();
        let n = mpi.size();
        // Each rank "computes" for 5 ms, exchanges a token around the ring,
        // and reduces a global sum — a classic bulk-synchronous step.
        let mut token = me as i64;
        for _ in 0..10 {
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            // Post the exchange *before* computing: the transfer rides the
            // time slices underneath the 5 ms of work (§3.2).
            let s = mpi.isend(next, 0, &token.to_le_bytes()).await;
            let r = mpi
                .irecv(
                    bcs_repro::mpi_api::message::SrcSel::Rank(prev),
                    bcs_repro::mpi_api::message::TagSel::Tag(0),
                )
                .await;
            mpi.compute(SimDuration::millis(5)).await;
            let results = mpi.waitall(&[s, r]).await;
            let data = results[1].0.as_ref().unwrap();
            token = i64::from_le_bytes(data[..8].try_into().unwrap()) + 1;
        }
        let total = mpi.allreduce_i64(ReduceOp::Sum, &[token]).await[0];
        (token, total)
    };

    println!("running 16 ranks on BCS-MPI (500us time slices)...");
    let bcs = run_app(&EngineSel::bcs(), layout(), program);
    println!(
        "  virtual runtime {:.3} ms, {} discrete events",
        bcs.elapsed.as_millis_f64(),
        bcs.events
    );

    println!("running the same program on the Quadrics-style baseline...");
    let quad = run_app(&EngineSel::quadrics(), layout(), program);
    println!(
        "  virtual runtime {:.3} ms, {} discrete events",
        quad.elapsed.as_millis_f64(),
        quad.events
    );

    // Results are engine-independent (same data, same reduction order).
    assert_eq!(bcs.results, quad.results);
    let (_, total) = bcs.results[0];
    println!("verified: identical results on both engines (global sum {total})");
    println!(
        "BCS-MPI slowdown on this non-blocking workload: {:+.2}%",
        slowdown_pct(bcs.elapsed, quad.elapsed)
    );
    println!("(non-blocking exchanges overlap with compute, so the coscheduled");
    println!(" protocol costs almost nothing — the central claim of the paper)");
}
