//! Anatomy of buffered coscheduling: watch the slice machinery work.
//!
//! ```sh
//! cargo run --release --example coscheduling_anatomy
//! ```
//!
//! Runs a blocking ping-pong on BCS-MPI and dumps the protocol statistics:
//! slices executed, descriptors exchanged, matches, chunks, and the
//! measured distribution of blocking delays — which must average the
//! paper's 1.5 time slices. Also demonstrates that the whole simulation is
//! deterministic: a second run produces bit-identical timing.

use bcs_repro::bcs_mpi::{BcsConfig, BcsMpi};
use bcs_repro::mpi_api::message::{SrcSel, TagSel};
use bcs_repro::mpi_api::runtime::{JobLayout, run_job};
use bcs_repro::simcore::SimDuration;

fn run_once() -> (Vec<u64>, bcs_repro::bcs_mpi::BcsStats, Vec<bcs_repro::bcs_mpi::SliceRecord>) {
    let layout = JobLayout::new(2, 1, 2);
    let mut cfg = BcsConfig::default();
    cfg.trace_slices = true;
    let out = run_job(
        BcsMpi::new(cfg, &layout),
        layout,
        |mpi| {
            for i in 0..50u64 {
                // Irregular compute offsets spread the posts across slice
                // interiors, like a real application.
                mpi.compute(SimDuration::micros(311 + (i * 173) % 441));
                if mpi.rank() == 0 {
                    mpi.send(1, 1, &[42u8; 1024]);
                    mpi.recv(SrcSel::Rank(1), TagSel::Tag(2));
                } else {
                    mpi.recv(SrcSel::Rank(0), TagSel::Tag(1));
                    mpi.send(0, 2, &[24u8; 1024]);
                }
            }
            mpi.now().as_nanos()
        },
    );
    (out.results, out.engine.stats, out.engine.trace)
}

fn main() {
    let (finish, stats, trace) = run_once();

    println!("BCS-MPI protocol statistics for 100 blocking exchanges:");
    println!("  time slices executed ... {}", stats.slices);
    println!("  descriptors exchanged .. {}", stats.descriptors_exchanged);
    println!("  matches made ........... {}", stats.matches);
    println!("  chunks transferred ..... {}", stats.chunks);
    println!("  slice overruns ......... {}", stats.overruns);
    let h = &stats.blocking_delay;
    println!(
        "  blocking delay ......... mean {:.2} slices, p50 {:.2}, p95 {:.2} (paper: 1.5 mean)",
        h.mean().as_micros_f64() / 500.0,
        h.quantile(0.5).as_micros_f64() / 500.0,
        h.quantile(0.95).as_micros_f64() / 500.0,
    );

    // The per-slice timeline: the "global debugger view" the paper's
    // determinism enables (first 12 active slices).
    println!("\nslice timeline (active slices):");
    let timeline = bcs_repro::bcs_mpi::trace::render_timeline(&trace);
    for line in timeline.lines().take(13) {
        println!("  {line}");
    }

    // Determinism: the global communication state is known at every slice
    // boundary, so a rerun replays exactly (the property the paper says
    // "facilitates the implementation of checkpointing and debugging").
    let (finish2, _, trace2) = run_once();
    assert_eq!(finish, finish2);
    assert_eq!(trace, trace2);
    println!("\nrerun produced a bit-identical timeline: deterministic ✓");
}
