//! Communicators in action: the NPB FT transpose skeleton the paper could
//! not run ("MPI groups are not fully implemented yet", §4.5).
//!
//! ```sh
//! cargo run --release --example ft_communicators
//! ```
//!
//! Splits the world into row and column communicators over a 2-D process
//! grid, runs FT-style all-to-all transposes scoped to each, and compares
//! the two engines.

use bcs_repro::apps::npb::ft::{FtCfg, ft_bench};
use bcs_repro::apps::runner::{EngineSel, run_app, slowdown_pct};
use bcs_repro::mpi_api::datatype::ReduceOp;
use bcs_repro::mpi_api::runtime::JobLayout;
use bcs_repro::simcore::SimDuration;

fn main() {
    // First, a tiny hand-written demo of the comm API.
    let layout = JobLayout::new(4, 2, 8);
    let out = run_app(
        &EngineSel::bcs(),
        layout,
        |mut mpi: bcs_repro::mpi_api::AsyncMpi| async move {
            let me = mpi.rank();
            // 2x4 grid: rows {0..3} and {4..7}; columns pair across rows.
            let row = mpi.comm_split(None, (me / 4) as i64, 0).await.unwrap();
            let col = mpi.comm_split(None, (me % 4) as i64, 0).await.unwrap();
            let row_sum = mpi.allreduce_f64_on(&row, ReduceOp::Sum, &[me as f64]).await[0];
            let col_sum = mpi.allreduce_f64_on(&col, ReduceOp::Sum, &[me as f64]).await[0];
            (row.rank, row_sum as i64, col.rank, col_sum as i64)
        },
    );
    println!("2x4 grid on BCS-MPI: per-rank (row-rank, row-sum, col-rank, col-sum):");
    for (r, t) in out.results.iter().enumerate() {
        println!("  world rank {r}: {t:?}");
    }

    // Then the FT kernel itself on both engines.
    let cfg = FtCfg {
        n_local: 512,
        iters: 10,
        iter_compute: SimDuration::millis(50),
    };
    let mk = || JobLayout::new(8, 2, 16);
    let b = run_app(&EngineSel::bcs(), mk(), ft_bench(cfg.clone()));
    let q = run_app(&EngineSel::quadrics(), mk(), ft_bench(cfg));
    assert_eq!(b.results, q.results, "FT checksums must be engine-invariant");
    println!(
        "\nFT skeleton, 16 ranks: BCS-MPI {:.3}s vs baseline {:.3}s ({:+.2}%)",
        b.elapsed.as_secs_f64(),
        q.elapsed.as_secs_f64(),
        slowdown_pct(b.elapsed, q.elapsed)
    );
    println!("checksum (identical on every rank and engine): {:#x}", b.results[0]);
    println!("\nThe paper excluded FT because its prototype lacked MPI groups;");
    println!("with communicator-scoped collectives in both engines it just runs.");
}
