//! The paper's §5.4 story, runnable: SWEEP3D with blocking send/receive is
//! ~30 % slower under BCS-MPI; converting the matched pairs to
//! `Isend`/`Irecv` + `Waitall` ("less than fifty lines of source code")
//! removes the penalty.
//!
//! ```sh
//! cargo run --release --example sweep3d_transform
//! ```

use bcs_repro::apps::runner::{EngineSel, run_app, slowdown_pct};
use bcs_repro::apps::sweep3d::{SweepCfg, SweepVariant, sweep3d_bench};
use bcs_repro::mpi_api::runtime::JobLayout;
use bcs_repro::simcore::SimDuration;

fn main() {
    let layout = || JobLayout::new(8, 2, 16);
    let cfg = |variant| SweepCfg {
        steps: 100,
        step_compute: SimDuration::micros(3_500), // the paper's grain
        face_elems: 256,
        variant,
    };

    println!("SWEEP3D wavefront, 16 ranks, 3.5 ms compute steps\n");
    for variant in [SweepVariant::Blocking, SweepVariant::NonBlocking] {
        let b = run_app(&EngineSel::bcs(), layout(), sweep3d_bench(cfg(variant)));
        let q = run_app(&EngineSel::quadrics(), layout(), sweep3d_bench(cfg(variant)));
        assert_eq!(b.results, q.results, "flux must be engine-independent");
        println!(
            "{variant:?}: BCS-MPI {:.3}s  baseline {:.3}s  slowdown {:+.1}%",
            b.elapsed.as_secs_f64(),
            q.elapsed.as_secs_f64(),
            slowdown_pct(b.elapsed, q.elapsed),
        );
    }
    println!();
    println!("Blocking primitives suspend the caller until a slice boundary after");
    println!("the transfer (1.5 slices mean); the non-blocking form posts the same");
    println!("descriptors but overlaps the whole protocol with the 3.5 ms compute.");
}
