#!/usr/bin/env bash
# Repo verification, fully offline:
#   0. detlint: the determinism & safety lint pass (token rules D01-D07
#      plus the semantic rules D08 layering / D09 protocol exhaustiveness /
#      D10 panic paths / D11 nondeterminism taint, see DESIGN.md sections
#      10 and 15) — zero unwaived findings, no stale or reason-less
#      waivers, the total waiver count pinned (growing it is a reviewed
#      act: bump --max-waivers here with the new waiver's justification),
#      a well-formed reports/detlint.json, the layer-DAG/call-graph dump
#      in reports/detlint_graph.dot, and detlint self-hosting (its own
#      sources are part of the scanned tree)
#   1. tier-1: cargo build --release && cargo test -q   (covers the whole
#      workspace via workspace.default-members)
#   2. explicit --workspace test pass
#   3. the fault-recovery property suite (random fault plans: bit-identical
#      recovery + same-seed replay)
#   4. the fault ablation (quick), tolerance-gated, emitting
#      reports/ablation_fault.csv
#   5. the quick repro sequentially and with REPRO_THREADS=4: the CSVs
#      must be byte-identical across thread counts, and the parallel run
#      is gated against the sequential run's wall-clock baseline (the
#      gate's 5x + 2s threshold is deliberately tolerant of CI noise);
#      host-timed speedup pairs are ratio-gated on the sequential run
#      only — with 4 workers oversubscribing the host the timed regions
#      absorb preemption, so repro skips those gates and says so
#   6. the four microbenches (quick mode), emitting reports/microbench_*.csv;
#      engine_throughput additionally self-gates its two paired rows
#      (indexed matching vs the linear-scan reference, incremental image
#      capture vs a deep clone, both >= 5x) and exits non-zero on a miss
#   7. the n=4096 scale smoke: barrier + neighbor sweeps on the BlueGene/L
#      model via the stackless VM backend (DESIGN.md section 11), pinned
#      to one sweep worker so peak thread count is independent of n, with
#      the two n=4096 headline slowdowns tolerance-gated; plus the
#      fabric-matrix smoke (both engines on the QsNet and the RDMA-channel
#      fabrics, DESIGN.md section 12) and the ablation-schedule smoke
#      (DESIGN.md section 13: replay transparency pinned to exactly 0 ns,
#      pattern behavior flags pinned, and the million-message stress pair
#      gated >= 5x through gate::check_speedups — repro exits non-zero on
#      any miss) and the collective bake-off smoke (DESIGN.md section 14),
#      refreshing reports/bench_wallclock.json
#   8. fabric selection plumbing: the fabric-matrix CSV is byte-identical
#      at REPRO_THREADS=1 and 4; REPRO_FABRIC=qsnet is a no-op for
#      qsnet-default experiments, REPRO_FABRIC=rdma changes the wire
#      timing, and an unrecognized REPRO_FABRIC value aborts with an error
#      naming the valid options
#   9. collective algorithm plumbing (DESIGN.md section 14): the
#      bake-off itself runs in step 7 — reports/ablation_reduce.csv with
#      all three algorithm columns, its optimal-vs-emulated-multicast
#      pair gated >= 1.4x in virtual time; here REPRO_COLL=hw-multicast
#      must be a no-op for default runs and an unrecognized REPRO_COLL
#      value must abort naming the valid algorithms
#
# Any compile warning in any workspace crate is a failure (-D warnings).
set -euo pipefail
cd "$(dirname "$0")/.."

# The workspace has zero external dependencies (dev-deps included); prove
# it by forbidding registry/network access outright.
export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:-} -D warnings"

echo "== detlint: determinism & safety lints (D01-D11) -> reports/detlint.json + detlint_graph.dot"
cargo run --release -q -p detlint -- --graph dot --max-waivers 17
[ -s reports/detlint.json ] || { echo "verify: missing reports/detlint.json" >&2; exit 1; }
[ -s reports/detlint_graph.dot ] || { echo "verify: missing reports/detlint_graph.dot" >&2; exit 1; }
cargo run --release -q -p detlint -- --quiet --check-json reports/detlint.json \
  || { echo "verify: reports/detlint.json is malformed" >&2; exit 1; }
# Self-hosting: the linter's own sources are in the scan set (its one
# waived D01, the driver's self-timing, must appear in the ledger).
grep -q "crates/detlint/src/main.rs" reports/detlint.json \
  || { echo "verify: detlint is not linting its own sources" >&2; exit 1; }

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== full workspace test pass"
cargo test --workspace -q

echo "== fault-recovery property suite"
cargo test --release -q --test fault_recovery

echo "== fault ablation (quick, tolerance-gated) -> reports/ablation_fault.csv"
cargo run --release -q -p bench --bin repro -- ablation-fault --quick
[ -s reports/ablation_fault.csv ] || { echo "verify: missing reports/ablation_fault.csv" >&2; exit 1; }

echo "== parallel repro determinism (quick, REPRO_THREADS=1 vs 4) + wall-clock gate"
seq_dir="$(mktemp -d)"; par_dir="$(mktemp -d)"
trap 'rm -rf "$seq_dir" "$par_dir"' EXIT
REPRO_THREADS=1 cargo run --release -q -p bench --bin repro -- --quick all --out "$seq_dir" >/dev/null
REPRO_THREADS=4 cargo run --release -q -p bench --bin repro -- --quick all --out "$par_dir" \
  --wallclock-baseline "$seq_dir/bench_wallclock.json" >/dev/null
n=0
for f in "$seq_dir"/*.csv; do
  cmp -s "$f" "$par_dir/$(basename "$f")" \
    || { echo "verify: $(basename "$f") differs between REPRO_THREADS=1 and 4" >&2; exit 1; }
  n=$((n + 1))
done
[ "$n" -gt 0 ] || { echo "verify: quick repro emitted no CSVs" >&2; exit 1; }
echo "   $n CSVs byte-identical across thread counts; wall-clock gate passed"

echo "== offline microbenches (quick mode, engine_throughput 5x-gated) -> reports/microbench_*.csv"
for b in primitives engine_throughput softfloat_ops apps_micro; do
  MICROBENCH_QUICK=1 cargo run --release -q -p bench --bin "$b"
done

for b in primitives engine_throughput softfloat_ops apps_micro; do
  csv="reports/microbench_$b.csv"
  [ -s "$csv" ] || { echo "verify: missing $csv" >&2; exit 1; }
done

echo "== n=4096 scale smoke + fabric-matrix smoke + ablation-schedule/-reduce smokes (single sweep worker)"
smoke_out="$(REPRO_THREADS=1 cargo run --release -q -p bench --bin repro -- --quick scale fabric-matrix ablation-schedule ablation-reduce)"
[ -s reports/scale.csv ] || { echo "verify: missing reports/scale.csv" >&2; exit 1; }
[ -s reports/fabric_matrix.csv ] || { echo "verify: missing reports/fabric_matrix.csv" >&2; exit 1; }
[ -s reports/ablation_schedule.csv ] || { echo "verify: missing reports/ablation_schedule.csv" >&2; exit 1; }
[ -s reports/ablation_reduce.csv ] || { echo "verify: missing reports/ablation_reduce.csv" >&2; exit 1; }
# The schedule-machinery stress pair must have been measured and gated
# (a repro that silently skipped it would still exit 0).
echo "$smoke_out" | grep -q "stress_compiled_ns" \
  || { echo "verify: ablation-schedule stress speedup pair did not run" >&2; exit 1; }
# Same for the bake-off's optimal-vs-multicast pair (virtual-time gated).
echo "$smoke_out" | grep -q "rdma_optimal_large_ns" \
  || { echo "verify: ablation-reduce bake-off speedup pair did not run" >&2; exit 1; }
head -1 reports/ablation_reduce.csv | grep -q "hw-multicast.*binomial.*optimal" \
  || { echo "verify: ablation_reduce.csv lacks the three algorithm columns" >&2; exit 1; }

echo "== fabric selection plumbing (REPRO_THREADS, REPRO_FABRIC)"
fab_dir="$(mktemp -d)"
REPRO_THREADS=4 cargo run --release -q -p bench --bin repro -- --quick fabric-matrix --out "$fab_dir" >/dev/null
cmp -s reports/fabric_matrix.csv "$fab_dir/fabric_matrix.csv" \
  || { echo "verify: fabric_matrix.csv differs between REPRO_THREADS=1 and 4" >&2; exit 1; }
# REPRO_FABRIC=qsnet must reproduce a qsnet-default experiment exactly;
# =rdma must change the wire timing; a typo must die naming the options.
REPRO_THREADS=1 cargo run --release -q -p bench --bin repro -- --quick fig8b --out "$fab_dir" >/dev/null
REPRO_FABRIC=qsnet REPRO_THREADS=1 cargo run --release -q -p bench --bin repro -- --quick fig8b --out "$fab_dir/qs" >/dev/null
cmp -s "$fab_dir/fig8b.csv" "$fab_dir/qs/fig8b.csv" \
  || { echo "verify: REPRO_FABRIC=qsnet changed a qsnet-default run" >&2; exit 1; }
REPRO_FABRIC=rdma REPRO_THREADS=1 cargo run --release -q -p bench --bin repro -- --quick fig8b --out "$fab_dir/rd" >/dev/null
cmp -s "$fab_dir/fig8b.csv" "$fab_dir/rd/fig8b.csv" \
  && { echo "verify: REPRO_FABRIC=rdma did not change the wire timing" >&2; exit 1; }
if REPRO_FABRIC=bogus REPRO_THREADS=1 cargo run --release -q -p bench --bin repro -- --quick fig8b --out "$fab_dir/bad" >/dev/null 2>"$fab_dir/err.txt"; then
  echo "verify: REPRO_FABRIC=bogus was silently accepted" >&2; exit 1
fi
grep -q "valid values: qsnet, rdma" "$fab_dir/err.txt" \
  || { echo "verify: REPRO_FABRIC error does not name the valid options" >&2; exit 1; }
rm -rf "$fab_dir"
echo "   fabric-matrix deterministic across thread counts; REPRO_FABRIC plumbing OK"

echo "== collective algorithm plumbing (REPRO_COLL)"
coll_dir="$(mktemp -d)"
# Forcing the default algorithm must be a no-op; a typo must die naming
# the three labels (the bake-off itself ran, gated, in the smoke above).
REPRO_THREADS=1 cargo run --release -q -p bench --bin repro -- --quick fig8b --out "$coll_dir" >/dev/null
REPRO_COLL=hw-multicast REPRO_THREADS=1 cargo run --release -q -p bench --bin repro -- --quick fig8b --out "$coll_dir/hw" >/dev/null
cmp -s "$coll_dir/fig8b.csv" "$coll_dir/hw/fig8b.csv" \
  || { echo "verify: REPRO_COLL=hw-multicast changed a default run" >&2; exit 1; }
if REPRO_COLL=bogus REPRO_THREADS=1 cargo run --release -q -p bench --bin repro -- --quick fig8b --out "$coll_dir/bad" >/dev/null 2>"$coll_dir/err.txt"; then
  echo "verify: REPRO_COLL=bogus was silently accepted" >&2; exit 1
fi
grep -q "valid values: hw-multicast, binomial, optimal" "$coll_dir/err.txt" \
  || { echo "verify: REPRO_COLL error does not name the valid algorithms" >&2; exit 1; }
rm -rf "$coll_dir"
echo "   REPRO_COLL plumbing OK (no-op default, typo aborts naming the algorithms)"

echo "verify: OK"
