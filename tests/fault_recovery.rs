//! End-to-end fault injection & slice-boundary recovery (the `faultsim`
//! subsystem, realizing the paper's §6 transparent-fault-tolerance claim).
//!
//! The headline acceptance path: a node crash injected mid-application is
//! detected by the STORM heartbeat monitor within its epoch bound, the
//! survivors restore from the last slice-boundary checkpoint image, the
//! protocol resumes on the original timeline, and the job completes with
//! results **bit-identical** to the fault-free run. When recovery is
//! impossible (no image, budget spent) the machine aborts cleanly.

use bcs_repro::bcs_core::BcsWorld;
use bcs_repro::bcs_mpi::{BcsConfig, BcsMpi, CheckpointImage};
use bcs_repro::faultsim::{
    FaultPlan, FaultProfile, RecoveryCfg, fault_free_reference, run_with_recovery,
};
use bcs_repro::mpi_api::message::{SrcSel, TagSel};
use bcs_repro::mpi_api::runtime::{
    Backend, ClusterWorld, JobLayout, resume_program, run_program_hooked,
};
use bcs_repro::mpi_api::{AsyncMpi, ReduceOp};
use bcs_repro::qsnet::NodeId;
use bcs_repro::simcore::{Sim, SimDuration};
use proplite::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Deterministic ring workload: neighbor exchange with specific (never
/// wildcard) receives, a mix of chunked and small payloads, and an
/// occasional NIC-side allreduce. Returns a checksum over every received
/// byte and reduced value — any lost, duplicated or corrupted delivery
/// changes it, while pure timing shifts (heartbeat traffic, checkpoint
/// stalls, recovery rework) do not.
async fn ring_program(mut mpi: AsyncMpi, iters: u64) -> u64 {
    let me = mpi.rank();
    let n = mpi.size();
    let mut acc: u64 = (me as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for it in 0..iters {
        mpi.compute(SimDuration::micros(200 + 53 * ((me as u64 + it) % 5))).await;
        let to = (me + 1) % n;
        let from = (me + n - 1) % n;
        let sz = if it % 2 == 0 { 96 * 1024 } else { 512 };
        let payload: Vec<u8> = (0..sz)
            .map(|i| (acc ^ (i as u64).wrapping_mul(0x9E37_79B9)) as u8)
            .collect();
        let s = mpi.isend(to, it as i32, &payload).await;
        let r = mpi.irecv(SrcSel::Rank(from), TagSel::Tag(it as i32)).await;
        let res = mpi.waitall(&[s, r]).await;
        let data = res[1].0.as_ref().expect("recv payload");
        assert_eq!(data.len(), sz);
        for (i, b) in data.iter().enumerate() {
            acc = acc
                .wrapping_mul(31)
                .wrapping_add(*b as u64 ^ (i as u64 & 0xFF));
        }
        if it % 3 == 2 {
            let g = mpi
                .allreduce_f64(
                    ReduceOp::Sum,
                    &[me as f64 + it as f64 * 0.5, (acc as u32) as f64],
                )
                .await;
            for v in g {
                acc ^= v.to_bits();
            }
        }
    }
    acc
}

fn layout() -> JobLayout {
    JobLayout::new(4, 1, 4)
}

fn recovery_cfg() -> RecoveryCfg {
    RecoveryCfg::new(BcsConfig::default(), 2)
}

fn fault_free_results(rc: &RecoveryCfg, iters: u64) -> Vec<u64> {
    fault_free_reference(
        &rc.bcs,
        layout(),
        move |mpi: AsyncMpi| ring_program(mpi, iters),
        rc.opts.clone(),
    )
    .results
}

/// Satellite 1 + acceptance: the heartbeat monitor (first real consumer of
/// `storm::heartbeat::start_on`) declares a silent node dead within its
/// configured epoch bound, and the machine recovers and completes.
#[test]
fn silent_node_is_detected_within_the_epoch_bound() {
    let rc = recovery_cfg();
    let plan = FaultPlan::single_crash(&rc.bcs, NodeId(2), 5);
    let out = run_with_recovery(&rc, layout(), &plan, |mpi: AsyncMpi| ring_program(mpi, 6));
    assert!(out.completed, "recovery failed: {:?}", out.abort);
    assert_eq!(out.restarts, 1);
    assert_eq!(out.detections.len(), 1);
    let d = &out.detections[0];
    assert_eq!(d.node, NodeId(2));
    let lat = d.latency().expect("planned crash must have a latency");
    // Epoch bound: a node that dies right after acking a strobe is caught
    // by the second following beat; the Compare-And-Write completes within
    // a slice of that.
    let bound = rc.heartbeat_period * 2 + rc.bcs.timeslice;
    assert!(
        lat <= bound,
        "detection took {} (bound {})",
        lat,
        bound
    );
    assert!(d.restored_from_slice.is_some());
}

/// Acceptance: crash → detect → restore → resume completes bit-identical
/// to the fault-free execution.
#[test]
fn recovery_is_bit_identical_to_fault_free() {
    let rc = recovery_cfg();
    let reference = fault_free_results(&rc, 6);
    let plan = FaultPlan::single_crash(&rc.bcs, NodeId(1), 4);
    let out = run_with_recovery(&rc, layout(), &plan, |mpi: AsyncMpi| ring_program(mpi, 6));
    assert!(out.completed, "recovery failed: {:?}", out.abort);
    assert!(out.restarts >= 1, "the crash must have forced a restore");
    let got: Vec<u64> = out.results.iter().map(|r| r.unwrap()).collect();
    assert_eq!(got, reference, "recovered results diverged from fault-free run");
}

/// The acceptance workload: an NPB CG proxy (halo matvec + transpose
/// exchange + bit-exact NIC allreduces) crashes mid-solve, is detected,
/// restored, and converges to residual bits identical to the fault-free
/// solve.
#[test]
fn cg_proxy_recovers_bit_identically() {
    use bcs_repro::apps::npb::cg::{CgCfg, cg_bench};
    let rc = recovery_cfg();
    let cfg = CgCfg {
        n_local: 64,
        iters: 8,
        iter_compute: SimDuration::micros(300),
    };
    let reference =
        fault_free_reference(&rc.bcs, layout(), cg_bench(cfg.clone()), rc.opts.clone()).results;
    let plan = FaultPlan::single_crash(&rc.bcs, NodeId(3), 4);
    let out = run_with_recovery(&rc, layout(), &plan, cg_bench(cfg));
    assert!(out.completed, "recovery failed: {:?}", out.abort);
    assert!(out.restarts >= 1, "the crash must have forced a restore");
    let got: Vec<(u64, u64)> = out.results.iter().map(|r| r.unwrap()).collect();
    assert_eq!(got, reference, "CG residual bits diverged from fault-free solve");
    for (rho0, rho_n) in &got {
        assert!(f64::from_bits(*rho_n) < f64::from_bits(*rho0));
    }
}

/// Two crashes in sequence: the second strikes after the first recovery.
#[test]
fn survives_two_crashes() {
    let rc = recovery_cfg();
    let reference = fault_free_results(&rc, 6);
    let mut plan = FaultPlan::single_crash(&rc.bcs, NodeId(0), 3);
    plan.crashes
        .extend(FaultPlan::single_crash(&rc.bcs, NodeId(3), 9).crashes);
    let out = run_with_recovery(&rc, layout(), &plan, |mpi: AsyncMpi| ring_program(mpi, 6));
    assert!(out.completed, "recovery failed: {:?}", out.abort);
    assert_eq!(out.restarts, 2);
    assert_eq!(out.detections.len(), 2);
    let got: Vec<u64> = out.results.iter().map(|r| r.unwrap()).collect();
    assert_eq!(got, reference);
}

/// Transient data-channel drops are masked by the retry layer without any
/// restore at all: the timeout fires, the DMA is re-issued, and the job
/// completes bit-identically.
#[test]
fn dropped_dmas_are_retried_transparently() {
    let rc = recovery_cfg();
    let reference = fault_free_results(&rc, 6);
    let mut plan = FaultPlan::none();
    plan.drops = (0..12).collect();
    let out = run_with_recovery(&rc, layout(), &plan, |mpi: AsyncMpi| ring_program(mpi, 6));
    assert!(out.completed, "run failed: {:?}", out.abort);
    assert_eq!(out.restarts, 0, "drops must be masked below the restore layer");
    assert!(
        out.engine.fabric_stats().drops >= 1,
        "plan did not hit any bulk transfer"
    );
    assert!(out.engine.retry_stats().retries >= 1);
    assert_eq!(out.engine.retry_stats().aborts, 0);
    let got: Vec<u64> = out.results.iter().map(|r| r.unwrap()).collect();
    assert_eq!(got, reference);
}

/// Recovery impossible: with no restart budget the machine aborts cleanly —
/// a reported reason, not a panic or a livelock.
#[test]
fn abort_is_clean_when_restart_budget_is_exhausted() {
    let mut rc = recovery_cfg();
    rc.max_restarts = 0;
    let plan = FaultPlan::single_crash(&rc.bcs, NodeId(2), 4);
    let out = run_with_recovery(&rc, layout(), &plan, |mpi: AsyncMpi| ring_program(mpi, 6));
    assert!(!out.completed);
    let why = out.abort.expect("abort reason must be reported");
    assert!(why.contains("restart budget"), "unexpected reason: {why}");
    assert_eq!(out.detections.len(), 1);
    assert!(out.detections[0].restored_from_slice.is_none());
}

/// The same machine, retargeted onto the RDMA-channel fabric: InfiniBand
/// constants, software-emulated multicast/conditionals (`crates/rdmanet`).
/// The recovery stack must be fabric-agnostic — fault plans are keyed by
/// bulk transfer sequence numbers, which both fabrics assign identically.
fn rdma_recovery_cfg() -> RecoveryCfg {
    let mut bcs = BcsConfig::default();
    bcs.fabric = bcs_repro::qsnet::FabricKind::Rdma;
    bcs.net = bcs_repro::qsnet::NetModel::infiniband();
    RecoveryCfg::new(bcs, 2)
}

/// Crash → detect → restore → resume on the RDMA fabric: the snapshot and
/// restore of the software sequencer / QP port clocks must replay to
/// results bit-identical to the fault-free RDMA run.
#[test]
fn rdma_fabric_recovery_is_bit_identical_to_fault_free() {
    let rc = rdma_recovery_cfg();
    let reference = fault_free_results(&rc, 6);
    let plan = FaultPlan::single_crash(&rc.bcs, NodeId(1), 4);
    let out = run_with_recovery(&rc, layout(), &plan, |mpi: AsyncMpi| ring_program(mpi, 6));
    assert!(out.completed, "recovery failed: {:?}", out.abort);
    assert!(out.restarts >= 1, "the crash must have forced a restore");
    let got: Vec<u64> = out.results.iter().map(|r| r.unwrap()).collect();
    assert_eq!(got, reference, "recovered results diverged from fault-free RDMA run");
}

type CW = ClusterWorld<BcsMpi>;

/// Shadow every checkpoint image the engine captures with an eager
/// [`CheckpointImage::materialize`] deep clone, re-polling once per slice
/// while the job runs. The shadow is taken while the run keeps mutating the
/// engine, so if any post-capture mutation leaked into a shared
/// (copy-on-write) image layer, the incremental image and its deep clone
/// would diverge.
fn shadow_images(
    w: &mut CW,
    sim: &mut Sim<CW>,
    shadow: Rc<RefCell<Vec<CheckpointImage>>>,
    period: SimDuration,
) {
    {
        let mut sh = shadow.borrow_mut();
        while sh.len() < w.engine.images.len() {
            let img = &w.engine.images[sh.len()];
            sh.push(img.materialize());
        }
    }
    if w.finished < w.layout.ranks {
        let sh = shadow.clone();
        sim.schedule_in(period, move |w: &mut CW, sim| {
            shadow_images(w, sim, sh, period)
        });
    }
}

// Satellite 3: property suite over random fault plans.
proplite! {
    // Every case runs 2–3 full machine simulations; keep the counts tight.
    #![config(cases = 12, max_shrink_iters = 6)]

    /// (a) Whatever a seeded plan throws at the machine — crashes, drops,
    /// degradation windows — recovery yields results bit-identical to the
    /// fault-free run.
    #[test]
    fn random_fault_plans_recover_bit_identically(seed in 1u64..1_000_000u64) {
        let rc = recovery_cfg();
        let profile = FaultProfile { mtbf_slices: Some(6.0), drops: 4, degradations: 1 };
        let plan = FaultPlan::generate(seed, &rc.bcs, 4, 12, &profile);
        let reference = fault_free_results(&rc, 5);
        let out = run_with_recovery(&rc, layout(), &plan, |mpi: AsyncMpi| ring_program(mpi, 5));
        prop_assert!(out.completed, "seed {} failed: {:?}", seed, out.abort);
        let got: Vec<u64> = out.results.iter().map(|r| r.unwrap()).collect();
        prop_assert_eq!(got, reference);
    }

    /// (a') The same guarantee holds on the RDMA-channel fabric: random
    /// fault plans — crashes, bulk-sequence drops, degradation windows —
    /// recover bit-identically with the software-emulated collectives
    /// carrying the strobe and descriptor exchange.
    #[test]
    fn random_fault_plans_recover_bit_identically_on_rdma(seed in 1u64..1_000_000u64) {
        let rc = rdma_recovery_cfg();
        let profile = FaultProfile { mtbf_slices: Some(6.0), drops: 4, degradations: 1 };
        let plan = FaultPlan::generate(seed, &rc.bcs, 4, 12, &profile);
        let reference = fault_free_results(&rc, 5);
        let out = run_with_recovery(&rc, layout(), &plan, |mpi: AsyncMpi| ring_program(mpi, 5));
        prop_assert!(out.completed, "seed {} failed: {:?}", seed, out.abort);
        let got: Vec<u64> = out.results.iter().map(|r| r.unwrap()).collect();
        prop_assert_eq!(got, reference);
    }

    /// (b') RDMA fault runs replay exactly under the same seed: restored
    /// sequencer/port clocks land the machine on the identical timeline.
    #[test]
    fn same_seed_replays_the_rdma_fault_run_exactly(seed in 1u64..1_000_000u64) {
        let rc = rdma_recovery_cfg();
        let profile = FaultProfile { mtbf_slices: Some(5.0), drops: 3, degradations: 1 };
        let plan = FaultPlan::generate(seed, &rc.bcs, 4, 10, &profile);
        let a = run_with_recovery(&rc, layout(), &plan, |mpi: AsyncMpi| ring_program(mpi, 5));
        let b = run_with_recovery(&rc, layout(), &plan, |mpi: AsyncMpi| ring_program(mpi, 5));
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.restarts, b.restarts);
        prop_assert_eq!(a.elapsed.as_nanos(), b.elapsed.as_nanos());
        prop_assert_eq!(a.results, b.results);
        prop_assert_eq!(&a.engine.checkpoints, &b.engine.checkpoints);
    }

    /// (b) The whole fault experiment is deterministic: the same seed
    /// reproduces the same detections, restore points, checkpoint digests
    /// and virtual finish time.
    #[test]
    fn same_seed_replays_the_fault_run_exactly(seed in 1u64..1_000_000u64) {
        let rc = recovery_cfg();
        let profile = FaultProfile { mtbf_slices: Some(5.0), drops: 3, degradations: 1 };
        let plan = FaultPlan::generate(seed, &rc.bcs, 4, 10, &profile);
        let a = run_with_recovery(&rc, layout(), &plan, |mpi: AsyncMpi| ring_program(mpi, 5));
        let b = run_with_recovery(&rc, layout(), &plan, |mpi: AsyncMpi| ring_program(mpi, 5));
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.restarts, b.restarts);
        prop_assert_eq!(a.elapsed.as_nanos(), b.elapsed.as_nanos());
        prop_assert_eq!(a.results, b.results);
        prop_assert_eq!(&a.engine.checkpoints, &b.engine.checkpoints);
        let da: Vec<_> = a.detections.iter()
            .map(|d| (d.node.0, d.detected_at.as_nanos(), d.restored_from_slice)).collect();
        let db: Vec<_> = b.detections.iter()
            .map(|d| (d.node.0, d.detected_at.as_nanos(), d.restored_from_slice)).collect();
        prop_assert_eq!(da, db);
    }

    /// (c) Incremental (copy-on-write) checkpoint images are
    /// indistinguishable from deep clones: restoring — and resuming the
    /// whole job — from either member of each image/materialized pair is
    /// byte-identical, under random fault plans. The deep clones are taken
    /// *while the run keeps mutating the engine* (see [`shadow_images`]),
    /// so a missed unshare anywhere in the COW capture path shows up as a
    /// divergence here.
    #[test]
    fn incremental_images_recover_identically_to_deep_clones(seed in 1u64..1_000_000u64) {
        let rc = recovery_cfg();
        let profile = FaultProfile { mtbf_slices: None, drops: 3, degradations: 1 };
        let plan = FaultPlan::generate(seed, &rc.bcs, 4, 10, &profile);
        let shadow: Rc<RefCell<Vec<CheckpointImage>>> = Rc::new(RefCell::new(Vec::new()));
        let sh = shadow.clone();
        let timeslice = rc.bcs.timeslice;
        let out = run_program_hooked(
            BcsMpi::new(rc.bcs.clone(), &layout()),
            layout(),
            |mpi: AsyncMpi| ring_program(mpi, 5),
            move |w: &mut CW, sim: &mut Sim<CW>| {
                w.set_recording(true);
                let fabric = &mut w.bcs().fabric;
                fabric.plan_drops(plan.drops.clone());
                for d in &plan.degradations {
                    fabric.degrade_link(d.clone());
                }
                shadow_images(w, sim, sh, timeslice);
            },
            rc.opts.clone(),
            Backend::default(),
        );
        prop_assert!(out.completed, "seed {} failed: {:?}", seed, out.diagnostic);
        let mut shadow = shadow.borrow_mut();
        prop_assert!(!shadow.is_empty(), "no image was shadowed mid-run");
        // Boundaries that fell between the last poll and job completion are
        // shadowed now; the engine is quiescent for those, but the bulk of
        // the pairs above were cloned against a still-running machine.
        while shadow.len() < out.engine.images.len() {
            let img = &out.engine.images[shadow.len()];
            shadow.push(img.materialize());
        }
        // Every image restores to the same machine as its deep clone, and
        // both still reconstruct the digest recorded at capture time.
        for (inc, deep) in out.engine.images.iter().zip(shadow.iter()) {
            let ei = BcsMpi::restore_from_image(rc.bcs.clone(), &layout(), inc);
            let ed = BcsMpi::restore_from_image(rc.bcs.clone(), &layout(), deep);
            prop_assert_eq!(ei.capture_checkpoint(), ed.capture_checkpoint());
            prop_assert_eq!(ei.checkpoint_digest(), inc.digest);
            prop_assert_eq!(ed.checkpoint_digest(), inc.digest);
        }
        // Resuming the job to completion from a mid-run pair agrees too:
        // same results, same virtual finish, same downstream digests.
        let mid = out.engine.images.len() / 2;
        let mut outs = Vec::new();
        for img in [&out.engine.images[mid], &shadow[mid]] {
            let engine = BcsMpi::restore_from_image(rc.bcs.clone(), &layout(), img);
            let o = resume_program(
                engine,
                layout(),
                |mpi: AsyncMpi| ring_program(mpi, 5),
                &img.rt,
                |w: &mut CW, sim: &mut Sim<CW>| bcs_repro::bcs_mpi::resume_from_boundary(w, sim),
                |_: &mut CW, _: &mut Sim<CW>| {},
                rc.opts.clone(),
                Backend::default(),
            );
            prop_assert!(o.completed, "resume from slice {} failed", img.slice);
            outs.push((o.results, o.elapsed.as_nanos(), o.engine.checkpoints.clone()));
        }
        prop_assert_eq!(&outs[0], &outs[1]);
    }
}
