//! Slice-boundary checkpointing (the paper's §6 fault-tolerance direction):
//! the global communication state captured at slice boundaries must be
//! meaningful (reflect in-flight traffic) and reproducible (two replicas of
//! the same job produce identical digest streams).

use bcs_repro::bcs_mpi::{BcsConfig, BcsMpi};
use bcs_repro::mpi_api::message::{SrcSel, TagSel};
use bcs_repro::mpi_api::runtime::{JobLayout, RunOpts, run_job, run_job_hooked};
use bcs_repro::simcore::SimDuration;

fn run_with_checkpoints(every: u64) -> (Vec<(u64, u64)>, Vec<u64>) {
    let layout = JobLayout::new(4, 2, 8);
    let mut cfg = BcsConfig::default();
    cfg.checkpoint_every = Some(every);
    let out = run_job(BcsMpi::new(cfg, &layout), layout, |mpi| {
        let me = mpi.rank();
        let n = mpi.size();
        for it in 0..8u64 {
            mpi.compute(SimDuration::micros(700 + 137 * (me as u64 + it)));
            let peer = (me + 1) % n;
            let from = (me + n - 1) % n;
            // Mix of large (chunked) and small traffic so checkpoints see
            // in-flight transfers.
            let sz = if it % 3 == 0 { 200 * 1024 } else { 512 };
            let s = mpi.isend(peer, it as i32, &vec![it as u8; sz]);
            let r = mpi.irecv(SrcSel::Rank(from), TagSel::Tag(it as i32));
            let res = mpi.waitall(&[s, r]);
            assert!(res[1].0.is_some());
        }
        mpi.now().as_nanos()
    });
    (out.engine.checkpoints.clone(), out.results)
}

#[test]
fn digest_stream_replays_identically() {
    let (a, ta) = run_with_checkpoints(1);
    let (b, tb) = run_with_checkpoints(1);
    assert!(!a.is_empty());
    assert_eq!(a, b, "checkpoint digests must replicate");
    assert_eq!(ta, tb);
}

#[test]
fn checkpoint_interval_is_respected() {
    let (every1, _) = run_with_checkpoints(1);
    let (every4, _) = run_with_checkpoints(4);
    assert!(every1.len() >= 4 * every4.len() - 4);
    for (slice, _) in &every4 {
        assert_eq!(slice % 4, 0);
    }
}

#[test]
fn captured_state_reflects_inflight_traffic() {
    // Drive a large transfer and capture manually mid-flight.
    let layout = JobLayout::new(2, 1, 2);
    let mut cfg = BcsConfig::default();
    cfg.checkpoint_every = Some(1);
    let out = run_job(BcsMpi::new(cfg, &layout), layout, |mpi| {
        if mpi.rank() == 0 {
            mpi.send(1, 1, &vec![9u8; 1024 * 1024]); // ~11 slices of chunks
        } else {
            let d = mpi.recv_from(0, 1);
            assert_eq!(d.len(), 1024 * 1024);
        }
    });
    // At least one boundary must have seen a partially-moved transfer.
    let final_ck = out.engine.capture_checkpoint();
    assert_eq!(final_ck.inflight_bytes(), 0, "final state must be quiescent");
    assert!(
        out.engine.stats.chunked_messages >= 1,
        "transfer must have been chunked"
    );
    // Digest stream is non-trivial (states differ across boundaries).
    let digests: std::collections::HashSet<u64> =
        out.engine.checkpoints.iter().map(|&(_, d)| d).collect();
    assert!(digests.len() > 2, "checkpoints all identical: nothing captured");
}

#[test]
fn streaming_digest_matches_materialized_checkpoint() {
    // Restore mid-run images (non-trivial state: chunked transfers parked at
    // the boundary, open requests, unmatched descriptors) and check that the
    // allocation-free streaming digest agrees with the materialized
    // CommCheckpoint's digest — and with the digest recorded at capture.
    let layout = JobLayout::new(4, 2, 8);
    let mut cfg = BcsConfig::default();
    cfg.checkpoint_every = Some(1);
    cfg.checkpoint_images = true;
    let out = run_job_hooked(
        BcsMpi::new(cfg.clone(), &layout),
        layout.clone(),
        |mpi| {
            let me = mpi.rank();
            let n = mpi.size();
            for it in 0..6u64 {
                mpi.compute(SimDuration::micros(500 + 211 * (me as u64 + it)));
                let peer = (me + 1) % n;
                let from = (me + n - 1) % n;
                let sz = if it % 2 == 0 { 300 * 1024 } else { 256 };
                let s = mpi.isend(peer, it as i32, &vec![it as u8; sz]);
                let r = mpi.irecv(SrcSel::Rank(from), TagSel::Tag(it as i32));
                mpi.waitall(&[s, r]);
            }
        },
        |w, _| w.set_recording(true),
        RunOpts::default(),
    );
    assert!(out.completed);
    let images = &out.engine.images;
    assert!(images.len() > 4, "need several mid-run images");
    let mut nontrivial = 0;
    for img in images {
        let restored = BcsMpi::restore_from_image(cfg.clone(), &layout, img);
        let ck = restored.capture_checkpoint();
        if ck.inflight_bytes() > 0 {
            nontrivial += 1;
        }
        assert_eq!(restored.checkpoint_digest(), ck.digest());
        assert_eq!(restored.checkpoint_digest(), img.digest);
    }
    assert!(nontrivial > 0, "no image captured in-flight traffic");
}

#[test]
fn quiescence_of_final_state() {
    let (_, _) = run_with_checkpoints(2);
    // run_with_checkpoints already asserts correct payloads; a fresh engine
    // capture on a finished run must show empty queues.
    let layout = JobLayout::new(2, 1, 2);
    let out = run_job(
        BcsMpi::new(BcsConfig::default(), &layout),
        layout,
        |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 1, b"x");
            } else {
                mpi.recv_from(0, 1);
            }
        },
    );
    let ck = out.engine.capture_checkpoint();
    for n in &ck.nodes {
        assert!(n.pending_sends.is_empty());
        assert!(n.unmatched.is_empty());
        assert!(n.inflight.is_empty());
    }
    assert!(ck.suspended_ranks.is_empty());
    assert!(ck.open_collectives.is_empty());
}
