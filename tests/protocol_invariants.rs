//! Property-based protocol invariants.
//!
//! Random communication scripts — arbitrary mixes of blocking/non-blocking
//! sends and receives with varying sizes, tags and compute gaps — must
//! (1) complete without deadlock, (2) deliver every payload exactly once
//! and intact, (3) respect MPI non-overtaking per channel, and (4) replay
//! deterministically, on *both* engines.

use bcs_repro::apps::runner::{EngineSel, run_app};
use bcs_repro::mpi_api::message::{SrcSel, TagSel};
use bcs_repro::mpi_api::runtime::JobLayout;
use bcs_repro::simcore::{SimDuration, SimRng};
use proplite::prelude::*;

/// A randomly generated all-pairs communication round.
#[derive(Clone, Debug)]
struct Round {
    /// messages[s][d] = sizes of messages rank s sends to rank d.
    messages: Vec<Vec<Vec<usize>>>,
    compute_us: u64,
    nonblocking: bool,
}

fn round_strategy(ranks: usize) -> impl Strategy<Value = Round> {
    let msg = prop::collection::vec(0usize..5000, 0..3);
    let per_dst = prop::collection::vec(msg, ranks);
    let per_src = prop::collection::vec(per_dst, ranks);
    (per_src, 0u64..2000, any::<bool>()).prop_map(move |(messages, compute_us, nonblocking)| {
        Round {
            messages,
            compute_us,
            nonblocking,
        }
    })
}

/// Execute the round on one engine and return, per rank, the received
/// payload checksums per (src, msg-index) channel.
fn execute(sel: &EngineSel, ranks: usize, round: Round) -> Vec<Vec<(usize, usize, u64)>> {
    let layout = JobLayout::new(ranks, 1, ranks);
    let round = std::sync::Arc::new(round);
    let out = run_app(sel, layout, move |mut mpi: bcs_repro::mpi_api::AsyncMpi| {
        let round = std::sync::Arc::clone(&round);
        async move {
            let me = mpi.rank();
            let n = mpi.size();
            mpi.compute(SimDuration::micros(
                round.compute_us * (me as u64 % 3 + 1) / 2,
            ))
            .await;
            let mut send_reqs = Vec::new();
            let mut recv_reqs = Vec::new();
            // Post receives first (so blocking sends cannot deadlock), then
            // sends. Tag = message index within the channel.
            for src in 0..n {
                for (k, _) in round.messages[src][me].iter().enumerate() {
                    let req = mpi.irecv(SrcSel::Rank(src), TagSel::Tag(k as i32)).await;
                    recv_reqs.push((src, k, req));
                }
            }
            for dst in 0..n {
                for (k, &sz) in round.messages[me][dst].iter().enumerate() {
                    let payload: Vec<u8> =
                        (0..sz).map(|i| ((i * 13 + me * 3 + k) % 255) as u8).collect();
                    if round.nonblocking {
                        send_reqs.push(mpi.isend(dst, k as i32, &payload).await);
                    } else {
                        mpi.send(dst, k as i32, &payload).await;
                    }
                }
            }
            let mut got = Vec::new();
            for (src, k, req) in recv_reqs {
                let (data, st) = mpi.wait_recv(req).await;
                assert_eq!(st.source, src);
                assert_eq!(st.tag, k as i32);
                // Verify content integrity.
                for (i, &b) in data.iter().enumerate() {
                    assert_eq!(b, ((i * 13 + src * 3 + k) % 255) as u8, "corrupt payload");
                }
                let sum = data.iter().map(|&b| b as u64).sum::<u64>();
                got.push((src, k, sum.wrapping_add(data.len() as u64)));
            }
            mpi.waitall(&send_reqs).await;
            got.sort_unstable();
            got
        }
    });
    out.results
}

proplite! {
    // Each case runs full simulations, so keep the shrink budget modest.
    #![config(cases = 64, max_shrink_iters = 48)]

    #[test]
    fn random_rounds_complete_and_agree(round in round_strategy(5)) {
        let b = execute(&EngineSel::bcs(), 5, round.clone());
        let q = execute(&EngineSel::quadrics(), 5, round);
        prop_assert_eq!(b, q);
    }

    #[test]
    fn replay_is_deterministic(round in round_strategy(4)) {
        let a = execute(&EngineSel::bcs(), 4, round.clone());
        let b = execute(&EngineSel::bcs(), 4, round);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn randomized_long_mix_with_seeded_rng() {
    // A longer, deterministic stress: 200 operations per rank drawn from a
    // seeded RNG, same on both engines.
    let script = |mut mpi: bcs_repro::mpi_api::AsyncMpi| async move {
        let me = mpi.rank();
        let n = mpi.size();
        let mut rng = SimRng::new(0xDEAD).split(me as u64);
        let mut pending = Vec::new();
        let mut checksum = 0u64;
        // Every rank sends exactly 40 messages round-robin and receives 40.
        for k in 0..40u64 {
            let dst = (me + 1 + rng.next_below((n - 1) as u64) as usize) % n;
            let _ = dst;
            // Deterministic pairing instead: ring distance based on k.
            let d = (me + 1 + (k as usize % (n - 1))) % n;
            let sz = rng.next_below(2048) as usize;
            let payload = vec![(k % 251) as u8; sz];
            pending.push(mpi.isend(d, k as i32, &payload).await);
            if k % 4 == 0 {
                mpi.compute(SimDuration::micros(rng.next_below(700))).await;
            }
        }
        for k in 0..40u64 {
            let src = (me + n - 1 - (k as usize % (n - 1))) % n;
            let (data, _) = mpi.recv(SrcSel::Rank(src), TagSel::Tag(k as i32)).await;
            checksum = checksum
                .wrapping_mul(31)
                .wrapping_add(data.len() as u64)
                .wrapping_add(*data.first().unwrap_or(&0) as u64);
        }
        mpi.waitall(&pending).await;
        checksum
    };
    let layout = JobLayout::new(6, 1, 6);
    let b = run_app(&EngineSel::bcs(), layout.clone(), script);
    let q = run_app(&EngineSel::quadrics(), layout, script);
    assert_eq!(b.results, q.results);
}
