//! Cross-engine integration tests: the same MPI program must produce
//! bit-identical *results* on BCS-MPI and on the baseline — only timing may
//! differ. This is the repository's strongest correctness check, because
//! the two engines share no protocol code.

use bcs_repro::apps::npb::{cg, ep, is, lu, mg};
use bcs_repro::apps::runner::{EngineSel, run_app};
use bcs_repro::apps::{sage, sweep3d, synthetic};
use bcs_repro::mpi_api::datatype::ReduceOp;
use bcs_repro::mpi_api::message::{SrcSel, TagSel};
use bcs_repro::mpi_api::runtime::JobLayout;
use bcs_repro::mpi_api::{AsyncMpi, RankProgram};
use bcs_repro::simcore::SimDuration;

fn both<P, G>(ranks: usize, make: G) -> (Vec<P::Out>, Vec<P::Out>)
where
    P: RankProgram,
    G: Fn() -> P,
{
    let layout = JobLayout::crescendo(ranks);
    let b = run_app(&EngineSel::bcs(), layout.clone(), make());
    let q = run_app(&EngineSel::quadrics(), layout, make());
    (b.results, q.results)
}

#[test]
fn every_workload_is_engine_invariant() {
    let (b, q) = both(8, || is::is_bench(is::IsCfg::test()));
    assert_eq!(b, q, "IS");
    let (b, q) = both(8, || ep::ep_bench(ep::EpCfg::test()));
    assert_eq!(b, q, "EP");
    let (b, q) = both(8, || cg::cg_bench(cg::CgCfg::test()));
    assert_eq!(b, q, "CG");
    let (b, q) = both(8, || mg::mg_bench(mg::MgCfg::test()));
    assert_eq!(b, q, "MG");
    let (b, q) = both(8, || lu::lu_bench(lu::LuCfg::test()));
    assert_eq!(b, q, "LU");
    let (b, q) = both(8, || sage::sage_bench(sage::SageCfg::test()));
    assert_eq!(b, q, "SAGE");
    for v in [sweep3d::SweepVariant::Blocking, sweep3d::SweepVariant::NonBlocking] {
        let (b, q) = both(8, || sweep3d::sweep3d_bench(sweep3d::SweepCfg::test(v)));
        assert_eq!(b, q, "SWEEP3D {v:?}");
    }
    let (b, q) = both(8, || {
        synthetic::neighbor_loop(synthetic::NeighborLoopCfg::paper(SimDuration::millis(1), 3))
    });
    assert_eq!(b, q, "neighbor loop");
}

#[test]
fn mixed_wildcard_traffic_is_engine_invariant() {
    // A stress pattern with ANY_SOURCE receives, mixed tags and message
    // sizes: both engines must deliver the same multiset per (src, tag)
    // channel, respecting non-overtaking within each channel.
    let program = |mut mpi: AsyncMpi| async move {
        let me = mpi.rank();
        let n = mpi.size();
        if me == 0 {
            let expect = (n - 1) * 3;
            let mut per_channel: std::collections::BTreeMap<(usize, i32), Vec<usize>> =
                Default::default();
            for _ in 0..expect {
                let (data, st) = mpi.recv(SrcSel::Any, TagSel::Any).await;
                per_channel
                    .entry((st.source, st.tag))
                    .or_default()
                    .push(data.len());
            }
            // Non-overtaking: per (src, tag) channel sizes arrive in
            // sending order (1, 2, 3 multiples).
            for ((src, _tag), sizes) in &per_channel {
                let sorted: Vec<usize> = {
                    let mut s = sizes.clone();
                    s.sort_unstable();
                    s
                };
                assert_eq!(sizes, &sorted, "overtaking from {src}");
            }
            per_channel.len()
        } else {
            for k in 1..=3usize {
                let tag = (me % 3) as i32;
                mpi.send(0, tag, &vec![me as u8; k * me]).await;
            }
            0
        }
    };
    let (b, q) = both(8, || program);
    assert_eq!(b, q);
    assert_eq!(b[0], 7, "one channel per sender");
}

#[test]
fn collectives_chain_is_engine_invariant() {
    let program = |mut mpi: AsyncMpi| async move {
        let me = mpi.rank() as i64;
        let mut acc: Vec<u64> = Vec::new();
        for round in 0..4i64 {
            let s = mpi.allreduce_i64(ReduceOp::Sum, &[me + round]).await[0];
            acc.push(s as u64);
            let mx = mpi
                .allreduce_f64(ReduceOp::Max, &[me as f64 * 0.5 + round as f64])
                .await[0];
            acc.push(mx.to_bits());
            mpi.barrier().await;
            let root = (round as usize) % mpi.size();
            let payload = (mpi.rank() == root).then(|| vec![round as u8; 64]);
            let b = mpi.bcast(root, payload.as_deref()).await;
            acc.push(b.iter().map(|&x| x as u64).sum());
        }
        acc
    };
    let (b, q) = both(10, || program);
    assert_eq!(b, q);
}

#[test]
fn large_transfers_are_engine_invariant() {
    // 512 KiB messages: rendezvous on the baseline, multi-slice chunking on
    // BCS-MPI — the payload must survive both paths intact.
    let program = |mut mpi: AsyncMpi| async move {
        let me = mpi.rank();
        let n = mpi.size();
        let sz = 512 * 1024;
        let peer = (me + n / 2) % n;
        let pattern: Vec<u8> = (0..sz).map(|i| ((i * 31 + me * 7) % 251) as u8).collect();
        let s = mpi.isend(peer, 9, &pattern).await;
        let r = mpi.irecv(SrcSel::Rank((me + n - n / 2) % n), TagSel::Tag(9)).await;
        let results = mpi.waitall(&[s, r]).await;
        let got = results[1].0.as_ref().unwrap();
        let from = (me + n - n / 2) % n;
        let want: Vec<u8> = (0..sz).map(|i| ((i * 31 + from * 7) % 251) as u8).collect();
        assert_eq!(got, &want);
        got.iter().map(|&b| b as u64).sum::<u64>()
    };
    let (b, q) = both(4, || program);
    assert_eq!(b, q);
}
