//! Real gang scheduling inside the BCS-MPI engine (§5.4 remedy 1):
//! "schedule a different parallel job whenever the application blocks for
//! communication, thus making use of the CPU ... without requiring any code
//! modification."

use bcs_repro::bcs_mpi::{BcsConfig, BcsMpi, GangConfig};
use bcs_repro::mpi_api::Mpi;
use bcs_repro::mpi_api::datatype::ReduceOp;
use bcs_repro::mpi_api::runtime::{JobLayout, run_job};
use bcs_repro::simcore::{SimDuration, SimTime};

/// A blocking-heavy job: compute, then a *blocking* ring exchange scoped to
/// the job's own communicator — while blocked, the node's CPU is free for
/// the other job.
/// Job of a rank under the oversubscribed layout: each node hosts 4 rank
/// slots on 2 physical CPUs — slots {0,1} are job 0, slots {2,3} job 1, so
/// the active job always fills both CPUs.
fn job_of(rank: usize) -> usize {
    (rank % 4) / 2
}

fn shared_gang(ranks: usize) -> GangConfig {
    let mut jobs = vec![Vec::new(), Vec::new()];
    for r in 0..ranks {
        jobs[job_of(r)].push(r);
    }
    GangConfig {
        jobs,
        switch_cost: SimDuration::micros(25),
    }
}

fn two_job_program(steps: u64, compute: SimDuration) -> impl Fn(&mut Mpi) -> u64 + Send + Sync {
    move |mpi| {
        let me = mpi.rank();
        let job = job_of(me) as i64;
        let comm = mpi.comm_split(None, job, 0).expect("job communicator");
        let n = comm.size();
        let my = comm.rank;
        let right = comm.world_rank((my + 1) % n);
        let left = comm.world_rank((my + n - 1) % n);
        for step in 0..steps {
            mpi.compute(compute);
            let tag = (step % 512) as i32;
            // Blocking exchange: suspends ~1.5 slices — the hole the other
            // job fills.
            mpi.sendrecv(
                right,
                tag,
                &[my as u8; 64],
                bcs_repro::mpi_api::message::SrcSel::Rank(left),
                bcs_repro::mpi_api::message::TagSel::Tag(tag),
            );
        }
        let done = mpi.allreduce_f64_on(&comm, ReduceOp::Sum, &[1.0])[0];
        done as u64
    }
}

fn run(gang: Option<GangConfig>, ranks: usize, steps: u64, compute: SimDuration) -> (SimDuration, u64) {
    // 4 rank slots per node: two jobs of 2 ranks each share the node's two
    // physical CPUs (the oversubscription §5.4 contemplates, "not always
    // practical due to memory ... considerations").
    let layout = JobLayout::new(ranks / 4, 4, ranks);
    let mut cfg = BcsConfig::default();
    cfg.gang = gang;
    let out = run_job(
        BcsMpi::new(cfg, &layout),
        layout,
        two_job_program(steps, compute),
    );
    assert!(out.results.iter().all(|&d| d == (ranks / 2) as u64));
    (out.elapsed, out.engine.gang_switches())
}

#[test]
fn two_jobs_overlap_each_others_blocking_holes() {
    let steps = 30;
    let compute = SimDuration::micros(1_300); // ~2.6 slices compute, ~2 blocked
    // Dedicated baseline: every rank gets its own CPU (twice the hardware of
    // the shared runs).
    let (dedicated, sw0) = run(None, 8, steps, compute);
    assert_eq!(sw0, 0);
    // Gang-shared on half the CPUs. The §5.4 claim is against running the
    // two jobs *serially* on that hardware: the second job must come out
    // much cheaper than a full extra run, because it computes inside the
    // first job's blocking slices.
    let (gang, switches) = run(Some(shared_gang(8)), 8, steps, compute);
    assert!(switches > 10, "expected frequent job switches, got {switches}");
    let serial = dedicated.as_secs_f64() * 2.0;
    let vs_serial = gang.as_secs_f64() / serial;
    assert!(
        vs_serial < 0.85,
        "gang makespan is {vs_serial:.2}x serial; blocking holes not reclaimed"
    );
    // And sharing can never beat dedicated hardware.
    let vs_dedicated = gang.as_secs_f64() / dedicated.as_secs_f64();
    assert!(
        (1.0..1.75).contains(&vs_dedicated),
        "gang vs dedicated ratio {vs_dedicated:.2} out of range"
    );
}

#[test]
fn single_job_gang_matches_dedicated_timing() {
    // Gang mode with one job must behave like the plain engine (same
    // compute quantization path, no switches).
    let steps = 10;
    let compute = SimDuration::micros(2_300);
    let program = move |mpi: &mut Mpi| {
        for _ in 0..steps {
            mpi.compute(compute);
            mpi.barrier();
        }
        mpi.now().as_nanos()
    };
    let layout = || JobLayout::new(4, 2, 8);
    let plain = run_job(
        BcsMpi::new(BcsConfig::default(), &layout()),
        layout(),
        program,
    );
    let mut cfg = BcsConfig::default();
    cfg.gang = Some(GangConfig::round_robin(8, 1));
    let gang = run_job(BcsMpi::new(cfg, &layout()), layout(), program);
    assert_eq!(gang.engine.gang_switches(), 0);
    // Timing may differ by at most one slice (compute quantization).
    let a = plain.elapsed.as_micros_f64();
    let b = gang.elapsed.as_micros_f64();
    assert!(
        (a - b).abs() <= 501.0,
        "single-job gang diverged: {a:.0}us vs {b:.0}us"
    );
}

#[test]
fn gang_runs_are_deterministic() {
    let go = || run(Some(shared_gang(8)), 8, 12, SimDuration::micros(900));
    assert_eq!(go().0, go().0);
}

#[test]
fn descheduled_jobs_communication_still_progresses() {
    // Job 1 sleeps (computes) for a long stretch while job 0 exchanges
    // non-blocking messages: job 0's communication must complete long before
    // job 1's compute ends, because the NIC progresses it regardless of who
    // holds the CPU.
    let layout = JobLayout::new(2, 2, 4);
    // Node 0 hosts ranks {0,1}, node 1 hosts {2,3}; job 0 = {0,2},
    // job 1 = {1,3} (one rank of each job per node).
    let mut cfg = BcsConfig::default();
    cfg.gang = Some(GangConfig::round_robin(4, 2));
    let out = run_job(BcsMpi::new(cfg, &layout), layout, |mpi| {
        let me = mpi.rank();
        if me % 2 == 1 {
            // Job 1: pure compute hog.
            mpi.compute(SimDuration::millis(50));
            SimTime::ZERO.as_nanos()
        } else {
            // Job 0: a blocking round-trip between its two ranks.
            let peer = if me == 0 { 2 } else { 0 };
            let t0 = mpi.now();
            if me == 0 {
                mpi.send(peer, 1, &[1u8; 128]);
                mpi.recv_from(peer, 2);
            } else {
                mpi.recv_from(peer, 1);
                mpi.send(peer, 2, &[2u8; 128]);
            }
            mpi.now().since(t0).as_nanos()
        }
    });
    // Job 0's exchange finishes in a few slices, far below job 1's 50 ms.
    for (r, &ns) in out.results.iter().enumerate() {
        if r % 2 == 0 {
            assert!(
                ns < 5_000_000,
                "rank {r} exchange took {ns}ns — NIC progress stalled"
            );
        }
    }
}
