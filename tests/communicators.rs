//! Communicator (MPI group) tests — the functionality the paper's §4.5
//! lists as unimplemented, now working on both engines.

use bcs_repro::apps::runner::{EngineSel, run_app};
use bcs_repro::mpi_api::datatype::ReduceOp;
use bcs_repro::mpi_api::runtime::JobLayout;
use bcs_repro::mpi_api::{AsyncMpi, RankProgram};

fn both<P>(ranks: usize, f: P) -> (Vec<P::Out>, Vec<P::Out>)
where
    P: RankProgram + Copy,
{
    let layout = JobLayout::crescendo(ranks);
    let b = run_app(&EngineSel::bcs(), layout.clone(), f);
    let q = run_app(&EngineSel::quadrics(), layout, f);
    (b.results, q.results)
}

#[test]
fn split_by_parity_and_scoped_allreduce() {
    let prog = |mut mpi: AsyncMpi| async move {
        let me = mpi.rank();
        let comm = mpi.comm_split(None, (me % 2) as i64, me as i64).await.unwrap();
        // Sum of ranks within my parity class only.
        let s = mpi.allreduce_f64_on(&comm, ReduceOp::Sum, &[me as f64]).await[0];
        // Barrier scoped to the subgroup must not deadlock against the
        // other subgroup's collectives.
        mpi.barrier_on(&comm).await;
        (comm.rank, comm.size(), s as i64)
    };
    let (b, q) = both(10, prog);
    assert_eq!(b, q);
    for (r, &(local, size, sum)) in b.iter().enumerate() {
        assert_eq!(size, 5);
        assert_eq!(local, r / 2);
        let expect: i64 = (0..10i64).filter(|x| x % 2 == (r % 2) as i64).sum();
        assert_eq!(sum, expect, "rank {r}");
    }
}

#[test]
fn scoped_bcast_uses_comm_ranks() {
    let prog = |mut mpi: AsyncMpi| async move {
        let me = mpi.rank();
        // Two halves; root is comm-rank 1 (world rank 1 resp. n/2+1).
        let half = (me >= mpi.size() / 2) as i64;
        let comm = mpi.comm_split(None, half, 0).await.unwrap();
        let payload = (comm.rank == 1).then(|| vec![half as u8 + 10; 32]);
        let d = mpi.bcast_on(&comm, 1, payload.as_deref()).await;
        d[0]
    };
    let (b, q) = both(8, prog);
    assert_eq!(b, q);
    for (r, &v) in b.iter().enumerate() {
        assert_eq!(v, if r < 4 { 10 } else { 11 }, "rank {r}");
    }
}

#[test]
fn concurrent_subgroup_collectives_do_not_interfere() {
    // Odd and even groups run different numbers of collectives at their own
    // pace: no cross-group blocking may occur.
    let prog = |mut mpi: AsyncMpi| async move {
        let me = mpi.rank();
        let comm = mpi.comm_split(None, (me % 2) as i64, 0).await.unwrap();
        let rounds = if me % 2 == 0 { 6 } else { 2 };
        let mut acc = 0.0;
        for k in 0..rounds {
            acc = mpi.allreduce_f64_on(&comm, ReduceOp::Sum, &[k as f64 + me as f64]).await[0];
        }
        acc.to_bits()
    };
    let (b, q) = both(8, prog);
    assert_eq!(b, q);
}

#[test]
fn undefined_color_opts_out() {
    let prog = |mut mpi: AsyncMpi| async move {
        let me = mpi.rank();
        // Rank 0 opts out with a negative color.
        let color = if me == 0 { -1 } else { 1 };
        let comm = mpi.comm_split(None, color, 0).await;
        match comm {
            None => {
                assert_eq!(me, 0);
                -1i64
            }
            Some(c) => {
                assert_eq!(c.size(), mpi.size() - 1);
                mpi.allreduce_f64_on(&c, ReduceOp::Sum, &[1.0]).await[0] as i64
            }
        }
    };
    let (b, q) = both(6, prog);
    assert_eq!(b, q);
    assert_eq!(b[0], -1);
    assert!(b[1..].iter().all(|&v| v == 5));
}

#[test]
fn nested_splits_row_then_pairs() {
    let prog = |mut mpi: AsyncMpi| async move {
        let me = mpi.rank();
        let row = mpi.comm_split(None, (me / 4) as i64, 0).await.unwrap();
        // Split each row into pairs.
        let pair = mpi
            .comm_split(Some(&row), (row.rank / 2) as i64, 0)
            .await
            .unwrap();
        let s = mpi.allreduce_f64_on(&pair, ReduceOp::Sum, &[me as f64]).await[0];
        (pair.size(), s as i64)
    };
    let (b, q) = both(8, prog);
    assert_eq!(b, q);
    for (r, &(sz, sum)) in b.iter().enumerate() {
        assert_eq!(sz, 2);
        let partner = if r % 2 == 0 { r + 1 } else { r - 1 };
        assert_eq!(sum, (r + partner) as i64, "rank {r}");
    }
}

#[test]
fn ft_kernel_class_runs_on_62_ranks() {
    use bcs_repro::apps::npb::ft;
    let layout = JobLayout::crescendo(62);
    let out = run_app(
        &EngineSel::quadrics(),
        layout,
        ft::ft_bench(ft::FtCfg::test()),
    );
    assert!(out.results.windows(2).all(|w| w[0] == w[1]));
}
