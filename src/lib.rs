#![forbid(unsafe_code)]
//! # bcs-repro — umbrella crate
//!
//! Re-exports every crate of the BCS-MPI reproduction so examples and
//! integration tests can `use bcs_repro::*`. See `README.md` for the
//! architecture and `DESIGN.md` for the per-experiment index.

pub use apps;
pub use bcs_core;
pub use bcs_mpi;
pub use faultsim;
pub use mpi_api;
pub use qsnet;
pub use quadrics_mpi;
pub use simcore;
pub use softfloat;
pub use storm;
